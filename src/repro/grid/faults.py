"""Fault injection: volunteer churn and supervisor retry policy.

Real volunteer grids (SETI@home, the paper's §1 setting) lose work
units constantly — machines go offline mid-task, results never return.
Verification schemes must compose with a *retry policy*, and the
retries cost real supervisor traffic and grid cycles.  Two pieces:

* :class:`FlakyParticipant` — wraps any behaviour with a
  per-assignment dropout coin: with probability ``dropout_rate`` the
  participant does the (partial) work but never reports back.
* :class:`RetryingScheme` — wraps any
  :class:`~repro.core.scheme.VerificationScheme` with the supervisor's
  policy: on dropout, reassign (fresh participant, fresh seed) up to
  ``max_retries`` times; every abandoned attempt's cost is accounted
  to the ``other_ledger`` (wasted grid cycles, like the double-check
  baseline's replicas).

Dropout is orthogonal to cheating: a flaky cheater can drop out *or*
come back with a fabricated commitment, and the scheme's detection
properties must be unaffected for attempts that do complete — the
fault-injection tests pin exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accounting import CostLedger
from repro.cheating.strategies import Behavior
from repro.core.scheme import (
    RejectReason,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.exceptions import SchemeConfigurationError
from repro.tasks.result import TaskAssignment
from repro.utils.prf import prf_coin


class DroppedOut(Exception):
    """Raised inside a run when the participant vanishes.

    Carries the compute the vanished volunteer burned before going
    dark, so the retry policy can account the waste.
    """

    def __init__(self, task_id: str, spent_cost: float, evaluations: int):
        super().__init__(task_id)
        self.task_id = task_id
        self.spent_cost = spent_cost
        self.evaluations = evaluations


@dataclass
class FlakyParticipant:
    """A behaviour wrapper that sometimes never reports back.

    The dropout coin is deterministic in ``(task_id, salt)``, so a
    retry with a fresh seed re-flips it — exactly how a reassignment to
    a different volunteer behaves.
    """

    inner: Behavior
    dropout_rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.dropout_rate < 1.0:
            raise SchemeConfigurationError(
                f"dropout_rate must be in [0, 1), got {self.dropout_rate}"
            )
        self.name = f"flaky({self.inner.name}, p={self.dropout_rate:g})"

    def produce(self, assignment: TaskAssignment, evaluate, salt: bytes = b""):
        spent = {"cost": 0.0, "evals": 0}

        def counting_evaluate(x):
            spent["cost"] += assignment.function.cost
            spent["evals"] += 1
            return evaluate(x)

        work = self.inner.produce(assignment, counting_evaluate, salt=salt)
        if prf_coin(
            b"dropout",
            assignment.task_id.encode("utf-8"),
            salt,
            probability=self.dropout_rate,
        ):
            # The cycles were spent; the results never leave the machine.
            raise DroppedOut(
                assignment.task_id,
                spent_cost=spent["cost"],
                evaluations=spent["evals"],
            )
        return work

    def corrupt_report(self, report, index):
        return self.inner.corrupt_report(report, index)


class RetryingScheme(VerificationScheme):
    """Supervisor retry policy around any verification scheme.

    On :class:`DroppedOut`, the task is reassigned with a derived seed;
    all costs of abandoned attempts are folded into ``other_ledger``.
    If every attempt drops out, the run is rejected with
    ``PROTOCOL_VIOLATION`` (the supervisor cannot accept unreturned
    work) and ``work`` is ``None``.
    """

    def __init__(self, inner: VerificationScheme, max_retries: int = 3) -> None:
        if max_retries < 0:
            raise SchemeConfigurationError(
                f"max_retries must be >= 0, got {max_retries}"
            )
        self.inner = inner
        self.max_retries = max_retries
        self.name = f"retrying({inner.name}, retries={max_retries})"

    def run(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        seed: int = 0,
    ) -> SchemeRunResult:
        wasted = CostLedger()
        attempts = 0
        for attempt in range(self.max_retries + 1):
            attempts += 1
            try:
                result = self.inner.run(
                    assignment, behavior, seed=seed * 7919 + attempt
                )
            except DroppedOut as dropped:
                # Account the vanished volunteer's burned cycles.
                wasted.evaluation_cost += dropped.spent_cost
                wasted.evaluations += dropped.evaluations
                wasted.bump("dropouts")
                continue
            result.other_ledger.merge(wasted)
            result.other_ledger.bump("attempts", attempts)
            return result
        outcome = VerificationOutcome(
            task_id=assignment.task_id,
            accepted=False,
            reason=RejectReason.PROTOCOL_VIOLATION,
        )
        wasted.bump("attempts", attempts)
        return SchemeRunResult(
            outcome=outcome,
            participant_ledger=CostLedger(),
            supervisor_ledger=CostLedger(),
            work=None,
            other_ledger=wasted,
        )
