"""Participant node: an actor wrapping the CBS protocol objects.

The actor layer (nodes + :class:`~repro.grid.network.Network`) exists so
examples and integration tests can exercise the *message flow* of the
paper's architecture — including the §4 broker topology where the
supervisor never addresses participants directly.  Statistical
experiments drive :class:`~repro.core.scheme.VerificationScheme`
directly instead; both layers share the same protocol objects, so the
costs agree.
"""

from __future__ import annotations

from typing import Callable

from repro.cheating.strategies import Behavior
from repro.core.cbs import CBSParticipant
from repro.core.ni_cbs import NICBSParticipant
from repro.core.protocol import AssignMsg, SampleChallengeMsg, VerdictMsg
from repro.exceptions import ProtocolError
from repro.accounting import CostLedger
from repro.grid.network import Network
from repro.merkle.hashing import HashFunction
from repro.merkle.tree import LeafEncoding
from repro.tasks.result import TaskAssignment


class ParticipantNode:
    """A grid participant reachable over the simulated network.

    Parameters
    ----------
    name:
        Network address.
    network:
        The fabric to attach to.
    behavior:
        Honest or cheating strategy (paper §2.2).
    assignment_resolver:
        Callback ``task_id -> TaskAssignment``; models the shared
        work-unit catalogue (the real payload a grid client downloads).
    protocol:
        ``"cbs"`` (interactive) or ``"ni-cbs"``.
    n_samples, sample_hash:
        NI-CBS parameters (ignored for interactive CBS, where the
        supervisor chooses the samples).
    """

    def __init__(
        self,
        name: str,
        network: Network,
        behavior: Behavior,
        assignment_resolver: Callable[[str], TaskAssignment],
        protocol: str = "cbs",
        n_samples: int = 16,
        sample_hash: HashFunction | None = None,
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        subtree_height: int | None = None,
        salt: bytes = b"",
    ) -> None:
        if protocol not in ("cbs", "ni-cbs"):
            raise ProtocolError(f"unknown protocol {protocol!r}")
        self.name = name
        self.network = network
        self.behavior = behavior
        self.assignment_resolver = assignment_resolver
        self.protocol = protocol
        self.n_samples = n_samples
        self.sample_hash = sample_hash
        self.hash_fn = hash_fn
        self.leaf_encoding = leaf_encoding
        self.subtree_height = subtree_height
        self.salt = salt
        self.ledger = CostLedger()
        self._sessions: dict[str, CBSParticipant] = {}
        self.verdicts: dict[str, VerdictMsg] = {}
        network.attach(self)

    # ------------------------------------------------------------------

    def receive(self, sender: str, message: object) -> None:
        """Network dispatch."""
        if isinstance(message, AssignMsg):
            self._handle_assignment(sender, message)
        elif isinstance(message, SampleChallengeMsg):
            self._handle_challenge(sender, message)
        elif isinstance(message, VerdictMsg):
            self.verdicts[message.task_id] = message
        else:
            raise ProtocolError(
                f"{self.name}: unexpected message {type(message).__name__}"
            )

    def _handle_assignment(self, sender: str, msg: AssignMsg) -> None:
        assignment = self.assignment_resolver(msg.task_id)
        if assignment.n_inputs != msg.n_inputs:
            raise ProtocolError(
                f"{self.name}: catalogue says {assignment.n_inputs} inputs, "
                f"assignment message says {msg.n_inputs}"
            )
        if self.protocol == "cbs":
            session = CBSParticipant(
                assignment,
                self.behavior,
                hash_fn=self.hash_fn,
                leaf_encoding=self.leaf_encoding,
                subtree_height=self.subtree_height,
                ledger=self.ledger,
                salt=self.salt,
            )
            self._sessions[msg.task_id] = session
            self.network.send(self.name, sender, session.compute_and_commit())
        else:
            session = NICBSParticipant(
                assignment,
                self.behavior,
                n_samples=self.n_samples,
                sample_hash=self.sample_hash,
                hash_fn=self.hash_fn,
                leaf_encoding=self.leaf_encoding,
                subtree_height=self.subtree_height,
                ledger=self.ledger,
                salt=self.salt,
            )
            self._sessions[msg.task_id] = session
            # Single-shot: submission goes back the way the work came
            # (to the broker in the GRACE topology, §4).
            self.network.send(self.name, sender, session.compute_and_submit())

    def _handle_challenge(self, sender: str, msg: SampleChallengeMsg) -> None:
        session = self._sessions.get(msg.task_id)
        if session is None:
            raise ProtocolError(
                f"{self.name}: challenge for unknown task {msg.task_id!r}"
            )
        self.network.send(self.name, sender, session.prove(msg))

    # ------------------------------------------------------------------

    def session(self, task_id: str) -> CBSParticipant:
        """The protocol session for a task (for tests/inspection)."""
        if task_id not in self._sessions:
            raise ProtocolError(f"no session for task {task_id!r}")
        return self._sessions[task_id]
