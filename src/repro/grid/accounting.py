"""Compatibility shim: the ledger lives in :mod:`repro.accounting`.

It moved to the package root because cost accounting is cross-cutting
(core schemes, Merkle hashing and the grid layer all charge ledgers),
and the core package must not depend on the grid package.
"""

from repro.accounting import CostLedger

__all__ = ["CostLedger"]
