"""Supervisor node: assigns work and verifies over the network.

Interactive mode (CBS): supervisor ↔ participant directly, with the
extra commit/challenge round of §3.1.  Non-interactive mode (NI-CBS):
the supervisor hands a bulk of assignments to a broker and verifies
one-shot submissions as they come back — the §4 GRACE topology where
"the supervisor does not even know which participant is conducting
what tasks".
"""

from __future__ import annotations

from typing import Callable

from repro.core.cbs import CBSSupervisor
from repro.core.ni_cbs import NICBSSupervisor
from repro.core.protocol import (
    AssignMsg,
    CommitmentMsg,
    NICBSSubmissionMsg,
    ProofBundleMsg,
)
from repro.core.scheme import VerificationOutcome
from repro.exceptions import ProtocolError
from repro.accounting import CostLedger
from repro.grid.network import Network
from repro.merkle.hashing import HashFunction
from repro.merkle.tree import LeafEncoding
from repro.tasks.result import TaskAssignment


class SupervisorNode:
    """The grid supervisor as a network actor."""

    def __init__(
        self,
        name: str,
        network: Network,
        protocol: str = "cbs",
        n_samples: int = 16,
        sample_hash: HashFunction | None = None,
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        seed: int = 0,
        with_replacement: bool = True,
        seed_fn: Callable[[str], int] | None = None,
    ) -> None:
        if protocol not in ("cbs", "ni-cbs"):
            raise ProtocolError(f"unknown protocol {protocol!r}")
        self.name = name
        self.network = network
        self.protocol = protocol
        self.n_samples = n_samples
        self.sample_hash = sample_hash
        self.hash_fn = hash_fn
        self.leaf_encoding = leaf_encoding
        self.seed = seed
        self.with_replacement = with_replacement
        #: Optional ``task_id -> session seed`` rule.  The default mixes
        #: ``hash(task_id)`` into ``seed``, which is process-salted;
        #: inject e.g. :func:`repro.engine.derive_seed` to make this
        #: actor's challenges reproducible across runs and comparable
        #: with the scheme layer and the asyncio service.
        self.seed_fn = seed_fn
        self.ledger = CostLedger()
        self._assignments: dict[str, TaskAssignment] = {}
        self._sessions: dict[str, CBSSupervisor] = {}
        self._participant_for_task: dict[str, str] = {}
        self.outcomes: dict[str, VerificationOutcome] = {}
        network.attach(self)

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------

    def assign(
        self, assignment: TaskAssignment, recipient: str
    ) -> None:
        """Send one assignment to a participant (or a broker)."""
        task_id = assignment.task_id
        if task_id in self._assignments:
            raise ProtocolError(f"task {task_id!r} already assigned")
        self._assignments[task_id] = assignment
        self._participant_for_task[task_id] = recipient
        self.network.send(
            self.name,
            recipient,
            AssignMsg(
                task_id=task_id,
                n_inputs=assignment.n_inputs,
                workload=type(assignment.function).__name__,
            ),
        )

    # ------------------------------------------------------------------
    # Network dispatch
    # ------------------------------------------------------------------

    def receive(self, sender: str, message: object) -> None:
        if isinstance(message, CommitmentMsg):
            self._handle_commitment(sender, message)
        elif isinstance(message, ProofBundleMsg):
            self._handle_proofs(sender, message)
        elif isinstance(message, NICBSSubmissionMsg):
            self._handle_submission(sender, message)
        else:
            raise ProtocolError(
                f"{self.name}: unexpected message {type(message).__name__}"
            )

    def _assignment_for(self, task_id: str) -> TaskAssignment:
        if task_id not in self._assignments:
            raise ProtocolError(f"{self.name}: unknown task {task_id!r}")
        return self._assignments[task_id]

    def _handle_commitment(self, sender: str, msg: CommitmentMsg) -> None:
        if self.protocol != "cbs":
            raise ProtocolError("commitments only arrive in interactive CBS")
        assignment = self._assignment_for(msg.task_id)
        session_seed = (
            self.seed_fn(msg.task_id)
            if self.seed_fn is not None
            else self.seed ^ hash(msg.task_id) & 0x7FFFFFFF
        )
        session = CBSSupervisor(
            assignment,
            n_samples=self.n_samples,
            hash_fn=self.hash_fn,
            leaf_encoding=self.leaf_encoding,
            seed=session_seed,
            ledger=self.ledger,
            with_replacement=self.with_replacement,
        )
        session.receive_commitment(msg)
        self._sessions[msg.task_id] = session
        self.network.send(self.name, sender, session.make_challenge())

    def _handle_proofs(self, sender: str, msg: ProofBundleMsg) -> None:
        session = self._sessions.get(msg.task_id)
        if session is None:
            raise ProtocolError(f"{self.name}: proofs before commitment")
        outcome = session.verify(msg)
        self.outcomes[msg.task_id] = outcome
        self.network.send(self.name, sender, session.verdict_message(outcome))

    def _handle_submission(self, sender: str, msg: NICBSSubmissionMsg) -> None:
        if self.protocol != "ni-cbs":
            raise ProtocolError("one-shot submissions only arrive in NI-CBS")
        assignment = self._assignment_for(msg.task_id)
        verifier = NICBSSupervisor(
            assignment,
            n_samples=self.n_samples,
            sample_hash=self.sample_hash,
            hash_fn=self.hash_fn,
            leaf_encoding=self.leaf_encoding,
            ledger=self.ledger,
        )
        self.outcomes[msg.task_id] = verifier.verify(msg)
