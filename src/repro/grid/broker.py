"""Grid Resource Broker — the GRACE architecture mediator (paper §4).

In the GRACE model the supervisor "assigns a big bulk of tasks to GRB,
and relies on GRB to interact with and assign tasks to the
participants"; the broker hides participants from the supervisor, which
is precisely why the interactive CBS round is awkward and NI-CBS
exists.  :class:`GridResourceBroker` implements that topology:

* assignments flowing supervisor → broker are scheduled round-robin
  (or by a pluggable policy) onto registered workers;
* NI-CBS submissions flowing participant → broker are forwarded to the
  supervisor verbatim;
* the broker never inspects payloads — it only routes, so its ledger
  measures pure relay overhead.
"""

from __future__ import annotations

from typing import Callable

from repro.core.protocol import AssignMsg, NICBSSubmissionMsg
from repro.exceptions import ProtocolError
from repro.accounting import CostLedger
from repro.grid.network import Network


class GridResourceBroker:
    """Round-robin mediating broker between supervisor and workers."""

    def __init__(
        self,
        name: str,
        network: Network,
        supervisor_name: str,
        scheduler: Callable[[list[str], AssignMsg], str] | None = None,
    ) -> None:
        self.name = name
        self.network = network
        self.supervisor_name = supervisor_name
        self.scheduler = scheduler
        self.ledger = CostLedger()
        self._workers: list[str] = []
        self._next_worker = 0
        #: task_id -> worker, for audit trails.
        self.placements: dict[str, str] = {}
        network.attach(self)

    def register_worker(self, worker_name: str) -> None:
        """Add a participant to the scheduling pool."""
        if worker_name in self._workers:
            raise ProtocolError(f"worker {worker_name!r} already registered")
        self._workers.append(worker_name)

    @property
    def workers(self) -> list[str]:
        return list(self._workers)

    # ------------------------------------------------------------------

    def _pick_worker(self, msg: AssignMsg) -> str:
        if not self._workers:
            raise ProtocolError("no workers registered with broker")
        if self.scheduler is not None:
            choice = self.scheduler(list(self._workers), msg)
            if choice not in self._workers:
                raise ProtocolError(f"scheduler picked unknown worker {choice!r}")
            return choice
        choice = self._workers[self._next_worker % len(self._workers)]
        self._next_worker += 1
        return choice

    def receive(self, sender: str, message: object) -> None:
        """Route: assignments downstream, submissions upstream."""
        if isinstance(message, AssignMsg):
            if sender != self.supervisor_name:
                raise ProtocolError(
                    f"assignment from non-supervisor {sender!r}"
                )
            worker = self._pick_worker(message)
            self.placements[message.task_id] = worker
            self.ledger.bump("assignments_routed")
            self.network.send(self.name, worker, message)
        elif isinstance(message, NICBSSubmissionMsg):
            if message.task_id not in self.placements:
                raise ProtocolError(
                    f"submission for unrouted task {message.task_id!r}"
                )
            self.ledger.bump("submissions_routed")
            self.network.send(self.name, self.supervisor_name, message)
        else:
            raise ProtocolError(
                f"{self.name}: unexpected message {type(message).__name__}"
            )
