"""Unified secure transport layer for every wire in the repo.

Before PR 5 the repo ran two hand-rolled networking stacks: the
participant-facing supervisor service (:mod:`repro.service`) and the
operator-facing cluster plane (:mod:`repro.engine.cluster`) each
carried a private copy of length-prefixed framing, size caps,
connect-retry loops and heartbeat plumbing — and the cluster plane
accepted pickled payloads from *anyone who could reach the port*.
This package is the one transport subsystem both planes now share:

* :mod:`repro.net.framing` — the 4-byte length-prefix frame rule and
  the centralized size-cap constants, in sync and asyncio variants.
* :mod:`repro.net.auth` — the mutual HMAC-SHA256 shared-secret
  challenge/response handshake (per-connection nonces, constant-time
  compare), run underneath the application codec so an
  unauthenticated peer is rejected before any JSON or pickle envelope
  is ever decoded.
* :mod:`repro.net.transport` — connection lifecycle:
  :class:`SecurityConfig` (secret + optional TLS material, one object
  for both roles), connect-with-retry/backoff, graceful close and the
  heartbeat beacon.

Layering rule: :mod:`repro.net` imports nothing from
:mod:`repro.service` or :mod:`repro.engine` — it is the floor they
both stand on.
"""

from repro.net.auth import (
    DEFAULT_HANDSHAKE_TIMEOUT,
    MIN_SECRET_BYTES,
    authenticate_client,
    authenticate_server,
    load_secret,
)
from repro.net.framing import (
    DEFAULT_STREAM_THRESHOLD_BYTES,
    FRAME_HEADER_BYTES,
    MAX_AUTH_FRAME_BYTES,
    MAX_CLUSTER_FRAME_BYTES,
    MAX_CLUSTER_PAYLOAD_BYTES,
    MAX_FRAME_BYTES,
    check_payload_size,
    frame_buffer,
    read_frame_bytes,
    read_frame_bytes_sync,
    split_frame_buffer,
    write_frame_bytes,
    write_frame_bytes_sync,
)
from repro.net.transport import (
    SecurityConfig,
    close_writer,
    generate_self_signed_cert,
    heartbeat_loop,
    open_connection,
)

__all__ = [
    # framing
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "MAX_CLUSTER_PAYLOAD_BYTES",
    "MAX_CLUSTER_FRAME_BYTES",
    "MAX_AUTH_FRAME_BYTES",
    "DEFAULT_STREAM_THRESHOLD_BYTES",
    "check_payload_size",
    "frame_buffer",
    "split_frame_buffer",
    "read_frame_bytes",
    "write_frame_bytes",
    "read_frame_bytes_sync",
    "write_frame_bytes_sync",
    # auth
    "DEFAULT_HANDSHAKE_TIMEOUT",
    "MIN_SECRET_BYTES",
    "load_secret",
    "authenticate_client",
    "authenticate_server",
    # transport
    "SecurityConfig",
    "open_connection",
    "close_writer",
    "heartbeat_loop",
    "generate_self_signed_cert",
]
