"""HMAC-SHA256 shared-secret handshake for both wire planes.

The paper's whole point is a supervisor that cannot be cheated (Du et
al., ICDCS 2004, §4) — yet a listening coordinator port that accepts
pickled job frames from anyone is a remote-code-execution invitation,
and the participant socket deserves an operator-gated mode too.  This
module implements a mutual challenge/response handshake that runs
*before* the application codec: an unauthenticated peer is rejected
before any JSON or pickle envelope is ever decoded.

Protocol (three tiny frames over :mod:`repro.net.framing`, each capped
at :data:`~repro.net.framing.MAX_AUTH_FRAME_BYTES`):

1. ``challenge`` — server → client: a fresh random 32-byte nonce.
2. ``response`` — client → server: the client's own fresh 32-byte
   nonce plus ``HMAC-SHA256(secret, "client" || server_nonce ||
   client_nonce)``.  Binding the MAC to the server's per-connection
   nonce kills replay: a recorded response is worthless on any other
   connection.
3. ``confirm`` — server → client: ``HMAC-SHA256(secret, "server" ||
   client_nonce || server_nonce)``, so the *server* proves knowledge
   of the secret too — a rogue listener cannot harvest work or feed a
   worker forged jobs.

MAC comparison is constant-time (:func:`hmac.compare_digest`).  Every
failure mode — wrong secret, malformed or truncated frames, replayed
or reflected MACs, a peer that goes silent — raises
:class:`~repro.exceptions.AuthError` within ``timeout`` seconds; the
handshake can reject, but never hang and never crash with anything
outside the :class:`~repro.exceptions.ReproError` hierarchy.

The secret itself is operator-distributed (``--secret-file``): one
line of high-entropy bytes, readable only by the deploying user.  The
handshake authenticates; it does not encrypt — pair it with the TLS
support in :mod:`repro.net.transport` when the wire crosses hosts you
do not trust.
"""

from __future__ import annotations

import asyncio
import hmac
import secrets

from repro.exceptions import AuthError, ProtocolError
from repro.net.framing import (
    MAX_AUTH_FRAME_BYTES,
    read_frame_bytes,
    write_frame_bytes,
)

#: Magic prefix every handshake frame carries: protocol name + version.
AUTH_MAGIC = b"RNA1"

#: Handshake frame tags (one byte after the magic).
_TAG_CHALLENGE = 0x01
_TAG_RESPONSE = 0x02
_TAG_CONFIRM = 0x03

#: Nonce and MAC widths (SHA-256 output size).
NONCE_BYTES = 32
MAC_BYTES = 32

#: Shortest secret the handshake will accept: anything below 16 bytes
#: is guessable enough to defeat the point of authenticating at all.
MIN_SECRET_BYTES = 16

#: Default seconds either side waits for the peer's next handshake
#: frame before giving up — a rejection, never a hang.
DEFAULT_HANDSHAKE_TIMEOUT = 10.0


def load_secret(path: str) -> bytes:
    """Read a shared secret from ``path`` (surrounding whitespace
    stripped, so ``echo``-created files just work).

    Raises :class:`~repro.exceptions.AuthError` for unreadable files
    and for secrets shorter than :data:`MIN_SECRET_BYTES`.
    """
    try:
        with open(path, "rb") as fh:
            secret = fh.read().strip()
    except OSError as exc:
        raise AuthError(f"cannot read secret file {path!r}: {exc}") from exc
    if len(secret) < MIN_SECRET_BYTES:
        raise AuthError(
            f"secret in {path!r} is {len(secret)} bytes; need at least "
            f"{MIN_SECRET_BYTES} bytes of entropy"
        )
    return secret


def compute_mac(secret: bytes, role: bytes, nonce_a: bytes, nonce_b: bytes) -> bytes:
    """The handshake MAC: ``HMAC-SHA256(secret, role || nonce_a || nonce_b)``.

    ``role`` (``b"client"`` / ``b"server"``) domain-separates the two
    directions so a reflected MAC can never satisfy the other side.
    """
    return hmac.new(secret, role + nonce_a + nonce_b, "sha256").digest()


# ----------------------------------------------------------------------
# Handshake frame encode/decode (fixed-width binary, hostile-input safe)
# ----------------------------------------------------------------------


def encode_challenge(server_nonce: bytes) -> bytes:
    return AUTH_MAGIC + bytes([_TAG_CHALLENGE]) + server_nonce


def encode_response(client_nonce: bytes, mac: bytes) -> bytes:
    return AUTH_MAGIC + bytes([_TAG_RESPONSE]) + client_nonce + mac


def encode_confirm(mac: bytes) -> bytes:
    return AUTH_MAGIC + bytes([_TAG_CONFIRM]) + mac


def _split_auth_frame(payload: bytes, tag: int, what: str, width: int) -> bytes:
    """Validate magic, tag and exact width; return the frame body."""
    if len(payload) < len(AUTH_MAGIC) + 1 or payload[: len(AUTH_MAGIC)] != AUTH_MAGIC:
        raise AuthError(f"{what}: not an auth handshake frame")
    if payload[len(AUTH_MAGIC)] != tag:
        raise AuthError(
            f"{what}: unexpected handshake frame tag "
            f"{payload[len(AUTH_MAGIC)]:#04x}"
        )
    body = payload[len(AUTH_MAGIC) + 1 :]
    if len(body) != width:
        raise AuthError(
            f"{what}: handshake frame body is {len(body)} bytes, "
            f"expected {width}"
        )
    return body


def decode_challenge(payload: bytes) -> bytes:
    """Decode a ``challenge`` frame into the server nonce."""
    return _split_auth_frame(payload, _TAG_CHALLENGE, "auth challenge", NONCE_BYTES)


def decode_response(payload: bytes) -> tuple[bytes, bytes]:
    """Decode a ``response`` frame into ``(client_nonce, mac)``."""
    body = _split_auth_frame(
        payload, _TAG_RESPONSE, "auth response", NONCE_BYTES + MAC_BYTES
    )
    return body[:NONCE_BYTES], body[NONCE_BYTES:]


def decode_confirm(payload: bytes) -> bytes:
    """Decode a ``confirm`` frame into the server MAC."""
    return _split_auth_frame(payload, _TAG_CONFIRM, "auth confirm", MAC_BYTES)


# ----------------------------------------------------------------------
# The handshake itself
# ----------------------------------------------------------------------


async def _next_auth_frame(reader, timeout: float, what: str) -> bytes:
    """One handshake frame, bounded in both size and time."""
    try:
        payload = await asyncio.wait_for(
            read_frame_bytes(reader, max_frame=MAX_AUTH_FRAME_BYTES),
            timeout=timeout,
        )
    except asyncio.TimeoutError as exc:
        raise AuthError(f"timed out waiting for {what}") from exc
    except ProtocolError as exc:
        raise AuthError(f"malformed {what}: {exc}") from exc
    if payload is None:
        raise AuthError(f"peer closed the connection before {what}")
    return payload


async def authenticate_server(
    reader,
    writer,
    secret: bytes,
    *,
    timeout: float = DEFAULT_HANDSHAKE_TIMEOUT,
) -> None:
    """Server side: challenge the peer, verify, confirm.

    Raises :class:`~repro.exceptions.AuthError` on any failure —
    before which no application frame has been read, so an
    unauthenticated peer never reaches the JSON or pickle decoders.
    """
    server_nonce = secrets.token_bytes(NONCE_BYTES)
    await write_frame_bytes(
        writer, encode_challenge(server_nonce), max_frame=MAX_AUTH_FRAME_BYTES
    )
    payload = await _next_auth_frame(reader, timeout, "auth response")
    client_nonce, mac = decode_response(payload)
    expected = compute_mac(secret, b"client", server_nonce, client_nonce)
    if not hmac.compare_digest(mac, expected):
        raise AuthError("auth response MAC mismatch (wrong shared secret?)")
    await write_frame_bytes(
        writer,
        encode_confirm(compute_mac(secret, b"server", client_nonce, server_nonce)),
        max_frame=MAX_AUTH_FRAME_BYTES,
    )


async def authenticate_client(
    reader,
    writer,
    secret: bytes,
    *,
    timeout: float = DEFAULT_HANDSHAKE_TIMEOUT,
) -> None:
    """Client side: answer the challenge, verify the server's confirm.

    Raises :class:`~repro.exceptions.AuthError` if the server never
    offers a challenge (it is probably running without ``--secret-file``
    — a configuration mismatch, reported instead of a deadlock), sends
    garbage, or fails to prove it holds the same secret.
    """
    payload = await _next_auth_frame(reader, timeout, "auth challenge")
    server_nonce = decode_challenge(payload)
    client_nonce = secrets.token_bytes(NONCE_BYTES)
    await write_frame_bytes(
        writer,
        encode_response(
            client_nonce,
            compute_mac(secret, b"client", server_nonce, client_nonce),
        ),
        max_frame=MAX_AUTH_FRAME_BYTES,
    )
    payload = await _next_auth_frame(reader, timeout, "auth confirm")
    mac = decode_confirm(payload)
    expected = compute_mac(secret, b"server", client_nonce, server_nonce)
    if not hmac.compare_digest(mac, expected):
        raise AuthError("auth confirm MAC mismatch: server failed to prove the secret")
