"""Length-prefixed frame I/O: the one framing layer both planes share.

Every byte stream in this repository — the participant-facing
supervisor service (:mod:`repro.service`) and the operator-facing
cluster plane (:mod:`repro.engine.cluster`) — moves *frames*: a
4-byte big-endian payload length followed by the payload bytes.  This
module owns that rule exactly once, in sync and asyncio flavours,
together with the size-cap constants that used to be duplicated
across the service codec and the cluster envelope.

The framing layer is deliberately payload-agnostic: it deals in
``bytes`` and leaves the JSON/pickle vocabulary to
:mod:`repro.service.codec`.  That split is what lets the
authentication handshake (:mod:`repro.net.auth`) run *underneath* the
application codec — an unauthenticated peer is rejected before any
JSON or pickle envelope is ever decoded.

Error contract: truncation, oversized length prefixes and short reads
raise :class:`~repro.exceptions.ProtocolError`; size-cap violations on
typed payloads raise :class:`~repro.exceptions.CodecError` naming the
offending frame type and the observed size (:func:`check_payload_size`).
"""

from __future__ import annotations

import asyncio
from typing import BinaryIO, Union

from repro.exceptions import CodecError, ProtocolError

#: Anything the framing layer accepts as a payload: the senders hand
#: over ``bytes`` today, but ``bytearray``/``memoryview`` views are
#: first-class so callers can frame slices of a reused buffer without
#: copying them into fresh ``bytes`` first.
Buffer = Union[bytes, bytearray, memoryview]

#: Width of the frame length prefix.
FRAME_HEADER_BYTES = 4

#: Below this payload size one coalesced ``header || payload`` write is
#: issued (a 4-byte-plus-payload copy is cheaper than a second write
#: call); at or above it the header and payload are written as two
#: buffers so the payload bytes are never copied into a frame buffer.
INLINE_FRAME_BYTES = 64 * 1024

#: Default ceiling on a single frame's payload.  Large enough for a
#: full NI-CBS submission at big domains, small enough that a hostile
#: length prefix cannot balloon server memory.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Ceiling on one pickled ``job``/``result`` payload (pre-base64).  A
#: chunk of scheme batches or their results at large domains fits with
#: room to spare; anything bigger is a misconfigured batch size or a
#: hostile frame.
MAX_CLUSTER_PAYLOAD_BYTES = 32 * 1024 * 1024

#: Frame ceiling for cluster-plane connections: the payload cap after
#: base64 expansion (4/3) plus envelope slack.
MAX_CLUSTER_FRAME_BYTES = MAX_CLUSTER_PAYLOAD_BYTES // 3 * 4 + 64 * 1024

#: Default worker-side ceiling on one streamed ``result_part``
#: payload.  A chunk whose encoded outcomes exceed this is shipped as
#: multiple bounded sub-frames instead of one giant pickle envelope,
#: so neither side ever materialises an unbounded result frame.
DEFAULT_STREAM_THRESHOLD_BYTES = 1 * 1024 * 1024

#: Ceiling on one authentication handshake frame.  Handshake messages
#: are tens of bytes; a pre-auth peer claiming anything bigger is
#: hostile and is rejected before a single payload byte is allocated.
MAX_AUTH_FRAME_BYTES = 256


def check_payload_size(what: str, size: int, limit: int) -> None:
    """Enforce a payload size cap, naming the frame type and size.

    The single chokepoint for every typed payload ceiling — ``job``,
    ``result``, ``result_part``, handshake — so cap violations always
    read the same: *which* frame, *how big*, against *what* limit.
    """
    if size > limit:
        raise CodecError(f"{what} of {size} bytes exceeds limit {limit}")


def _frame_header(payload: Buffer, max_frame: int) -> bytes:
    """Size-check one payload and return its 4-byte length prefix.

    The single encode-side chokepoint shared by :func:`frame_buffer`
    and both write variants, so every path enforces the cap the same
    way and produces the same wire bytes.
    """
    length = len(payload)
    if length > max_frame:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds limit {max_frame}"
        )
    return length.to_bytes(FRAME_HEADER_BYTES, "big")


def _parse_length(header: Buffer, max_frame: int) -> int:
    """Decode and cap-check a length prefix (decode-side chokepoint)."""
    length = int.from_bytes(header, "big")
    if length > max_frame:
        raise ProtocolError(f"frame of {length} bytes exceeds limit {max_frame}")
    return length


def frame_buffer(payload: Buffer, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one payload: 4-byte big-endian length prefix + bytes."""
    return b"".join((_frame_header(payload, max_frame), payload))


def split_frame_buffer(
    data: Buffer, max_frame: int = MAX_FRAME_BYTES
) -> bytes:
    """Extract the payload of one complete frame buffer.

    ``data`` must hold exactly one frame (header + payload, nothing
    else); truncation or an oversized length prefix raises
    :class:`~repro.exceptions.ProtocolError`.  ``memoryview`` input is
    parsed in place — the only copy is the returned payload bytes.
    """
    if len(data) < FRAME_HEADER_BYTES:
        raise ProtocolError(
            f"truncated frame header ({len(data)} of {FRAME_HEADER_BYTES} bytes)"
        )
    view = data if isinstance(data, memoryview) else memoryview(data)
    length = _parse_length(view[:FRAME_HEADER_BYTES], max_frame)
    body = view[FRAME_HEADER_BYTES:]
    if len(body) != length:
        raise ProtocolError(
            f"frame length prefix says {length} bytes, buffer has {len(body)}"
        )
    return bytes(body)


# ----------------------------------------------------------------------
# Asyncio variants (the service and cluster event loops)
# ----------------------------------------------------------------------


async def read_frame_bytes(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME_BYTES
) -> bytes | None:
    """Read one frame payload from an asyncio stream reader.

    Returns ``None`` on clean EOF (no partial header); raises
    :class:`~repro.exceptions.ProtocolError` on a truncated or
    oversized frame.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid frame header") from exc
    length = _parse_length(header, max_frame)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection closed mid frame ({len(exc.partial)} of {length} bytes)"
        ) from exc


async def write_frame_bytes(
    writer: asyncio.StreamWriter,
    payload: Buffer,
    max_frame: int = MAX_FRAME_BYTES,
) -> None:
    """Write one frame and drain — the backpressure point for senders.

    Small payloads coalesce with their header into one buffered write;
    payloads of :data:`INLINE_FRAME_BYTES` or more are handed to the
    transport as-is after the header, so a large result frame is never
    copied into a fresh ``header || payload`` buffer first.
    """
    header = _frame_header(payload, max_frame)
    if len(payload) < INLINE_FRAME_BYTES:
        writer.write(b"".join((header, payload)))
    else:
        writer.write(header)
        writer.write(payload)
    await writer.drain()


# ----------------------------------------------------------------------
# Sync variants (blocking sockets / file-like streams)
# ----------------------------------------------------------------------


def _read_exactly(stream: BinaryIO, n: int) -> bytes:
    """Read exactly ``n`` bytes from a blocking file-like stream.

    Fills one pre-sized buffer via ``readinto`` — a single allocation
    per frame instead of one ``bytes`` chunk per ``read()`` plus a
    join.  Streams without ``readinto`` (rare duck-typed wrappers)
    fall back to chunked ``read``.
    """
    buffer = bytearray(n)
    readinto = getattr(stream, "readinto", None)
    got = 0
    if readinto is not None:
        view = memoryview(buffer)
        while got < n:
            read = readinto(view[got:])
            if not read:
                if got == 0:
                    raise EOFError  # clean EOF, translated by the caller
                raise ProtocolError(
                    f"connection closed mid frame ({got} of {n} bytes)"
                )
            got += read
    else:
        while got < n:
            chunk = stream.read(n - got)
            if not chunk:
                if got == 0:
                    raise EOFError  # clean EOF, translated by the caller
                raise ProtocolError(
                    f"connection closed mid frame ({got} of {n} bytes)"
                )
            buffer[got : got + len(chunk)] = chunk
            got += len(chunk)
    return bytes(buffer)


def read_frame_bytes_sync(
    stream: BinaryIO, max_frame: int = MAX_FRAME_BYTES
) -> bytes | None:
    """Blocking twin of :func:`read_frame_bytes` for file-like streams.

    ``stream`` is anything with a blocking ``read(n)`` (ideally also
    ``readinto``) — a ``socket.makefile("rb")``, a pipe, a file.
    Returns ``None`` on clean EOF at a frame boundary.
    """
    try:
        header = _read_exactly(stream, FRAME_HEADER_BYTES)
    except EOFError:
        return None
    except ProtocolError as exc:
        raise ProtocolError("connection closed mid frame header") from exc
    length = _parse_length(header, max_frame)
    try:
        return _read_exactly(stream, length)
    except EOFError as exc:
        raise ProtocolError(
            f"connection closed mid frame (0 of {length} bytes)"
        ) from exc


def write_frame_bytes_sync(
    stream: BinaryIO, payload: Buffer, max_frame: int = MAX_FRAME_BYTES
) -> None:
    """Blocking twin of :func:`write_frame_bytes` for file-like streams.

    Mirrors the asyncio variant's split: small frames are one coalesced
    write, frames of :data:`INLINE_FRAME_BYTES` or more write the
    header and the payload separately so the payload is never copied.
    """
    header = _frame_header(payload, max_frame)
    if len(payload) < INLINE_FRAME_BYTES:
        stream.write(b"".join((header, payload)))
    else:
        stream.write(header)
        stream.write(payload)
    stream.flush()
