"""Connection lifecycle shared by the service and cluster planes.

Three concerns every networked component in this repo used to solve
privately, now solved once:

* **Security material** — :class:`SecurityConfig` bundles the shared
  secret (:mod:`repro.net.auth`) and the optional TLS cert/key pair,
  built from the same ``--secret-file`` / ``--tls-cert`` /
  ``--tls-key`` options every entry point exposes.  The trust model
  for TLS is *certificate pinning*: the client trusts exactly the
  certificate the operator distributed (usually self-signed), not a
  public CA, and hostname checking is off — operators dial
  coordinators by IP.  One config object serves both roles: servers
  call :meth:`SecurityConfig.server_ssl_context`, clients
  :meth:`SecurityConfig.client_ssl_context`.

* **Connect with retry/backoff** — :func:`open_connection` keeps
  re-dialling a listener that has not bound its port yet (workers
  racing a coordinator's startup across hosts is normal, not an
  error), with exponential backoff capped at
  :data:`MAX_BACKOFF_S`.

* **Liveness and teardown** — :func:`heartbeat_loop` is the beacon
  coroutine workers run beside their job loop, and
  :func:`close_writer` is the graceful close that never raises on an
  already-dead peer.
"""

from __future__ import annotations

import asyncio
import contextlib
import shutil
import ssl
import subprocess
from dataclasses import dataclass, field

from repro.exceptions import AuthError, ProtocolError
from repro.net.auth import (
    DEFAULT_HANDSHAKE_TIMEOUT,
    authenticate_client,
    authenticate_server,
    load_secret,
)

#: First retry delay for :func:`open_connection`; doubles per attempt.
INITIAL_BACKOFF_S = 0.05

#: Ceiling on the exponential connect backoff.
MAX_BACKOFF_S = 1.0


@dataclass(frozen=True)
class SecurityConfig:
    """Transport security material for one deployment.

    ``secret`` enables the mutual HMAC handshake; ``tls_cert`` (+
    ``tls_key`` on the listening side) enables TLS.  Either, both or
    neither may be set — ``None`` everywhere is explicit plaintext,
    the pre-PR-5 behaviour.
    """

    # repr=False: a traceback or log line that reprs the config must
    # never dump the operator's secret in cleartext.
    secret: bytes | None = field(default=None, repr=False)
    tls_cert: str | None = None
    tls_key: str | None = None
    handshake_timeout: float = DEFAULT_HANDSHAKE_TIMEOUT

    def __post_init__(self) -> None:
        if self.tls_key is not None and self.tls_cert is None:
            raise ProtocolError("--tls-key given without --tls-cert")
        if self.handshake_timeout <= 0:
            raise ProtocolError(
                f"handshake timeout must be positive, got "
                f"{self.handshake_timeout}"
            )

    @classmethod
    def from_options(
        cls,
        secret_file: str | None = None,
        tls_cert: str | None = None,
        tls_key: str | None = None,
        handshake_timeout: float = DEFAULT_HANDSHAKE_TIMEOUT,
    ) -> "SecurityConfig | None":
        """Build a config from CLI-shaped options; ``None`` if all unset."""
        if secret_file is None and tls_cert is None and tls_key is None:
            return None
        return cls(
            secret=load_secret(secret_file) if secret_file else None,
            tls_cert=tls_cert,
            tls_key=tls_key,
            handshake_timeout=handshake_timeout,
        )

    # ------------------------------------------------------------------
    # TLS contexts
    # ------------------------------------------------------------------

    def server_ssl_context(self) -> ssl.SSLContext | None:
        """The listening side's TLS context (``None`` = plaintext)."""
        if self.tls_cert is None:
            return None
        if self.tls_key is None:
            raise ProtocolError(
                "a TLS listener needs both --tls-cert and --tls-key"
            )
        ctx = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        ctx.minimum_version = ssl.TLSVersion.TLSv1_2
        try:
            ctx.load_cert_chain(self.tls_cert, self.tls_key)
        except (OSError, ssl.SSLError) as exc:
            raise ProtocolError(f"cannot load TLS cert/key: {exc}") from exc
        return ctx

    def client_ssl_context(self) -> ssl.SSLContext | None:
        """The dialling side's TLS context: pin the operator's cert.

        The distributed certificate *is* the trust anchor (self-signed
        operator certs, dialled by IP), so hostname verification is
        disabled while chain verification stays on.  Built once per
        config and cached — a loadgen opens one connection per
        participant, and the cert file must not be re-read N times.
        """
        if self.tls_cert is None:
            return None
        cached = self.__dict__.get("_client_ctx")
        if cached is not None:
            return cached
        ctx = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
        ctx.minimum_version = ssl.TLSVersion.TLSv1_2
        ctx.check_hostname = False
        ctx.verify_mode = ssl.CERT_REQUIRED
        try:
            ctx.load_verify_locations(cafile=self.tls_cert)
        except (OSError, ssl.SSLError) as exc:
            raise ProtocolError(f"cannot load TLS cert: {exc}") from exc
        object.__setattr__(self, "_client_ctx", ctx)
        return ctx

    # ------------------------------------------------------------------
    # Handshake hooks (no-ops without a secret)
    # ------------------------------------------------------------------

    async def authenticate_inbound(self, reader, writer) -> None:
        """Server side of the HMAC handshake; no-op without a secret."""
        if self.secret is not None:
            await authenticate_server(
                reader, writer, self.secret, timeout=self.handshake_timeout
            )

    async def authenticate_outbound(self, reader, writer) -> None:
        """Client side of the HMAC handshake; no-op without a secret."""
        if self.secret is not None:
            await authenticate_client(
                reader, writer, self.secret, timeout=self.handshake_timeout
            )


def generate_self_signed_cert(
    cert_path: str,
    key_path: str,
    *,
    common_name: str = "repro",
    days: int = 365,
) -> None:
    """Generate a self-signed cert/key pair (the README recipe).

    The pinned-certificate trust model needs exactly one artefact:
    a cert the operator distributes to every dialling side.  This
    wraps the ``openssl req -x509`` one-liner (EC P-256, no
    passphrase); tests, benches and quick deployments all share it.
    Raises :class:`~repro.exceptions.ProtocolError` when no
    ``openssl`` binary is available or generation fails.
    """
    if shutil.which("openssl") is None:
        raise ProtocolError("no openssl binary available to generate a cert")
    try:
        subprocess.run(
            [
                "openssl", "req", "-x509",
                "-newkey", "ec", "-pkeyopt", "ec_paramgen_curve:prime256v1",
                "-keyout", key_path, "-out", cert_path,
                "-days", str(days), "-nodes",
                "-subj", f"/CN={common_name}",
            ],
            check=True,
            capture_output=True,
        )
    except subprocess.CalledProcessError as exc:
        raise ProtocolError(
            f"self-signed cert generation failed: "
            f"{exc.stderr.decode(errors='replace')}"
        ) from exc


async def open_connection(
    host: str,
    port: int,
    *,
    ssl_context: ssl.SSLContext | None = None,
    connect_retry_s: float = 0.0,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Dial ``host:port``, retrying refused connects with backoff.

    ``connect_retry_s`` is the total budget for re-dialling a listener
    that is not accepting yet (0 = fail on the first refusal, the
    historical client behaviour).  Retries back off exponentially from
    :data:`INITIAL_BACKOFF_S` to :data:`MAX_BACKOFF_S` so a fleet of
    workers does not hammer a coordinator that is still binding.
    TLS handshake failures are *not* retried — a bad certificate will
    not get better.
    """
    if connect_retry_s < 0:
        raise ProtocolError(
            f"connect retry must be >= 0, got {connect_retry_s}"
        )
    loop = asyncio.get_running_loop()
    deadline = loop.time() + connect_retry_s
    backoff = INITIAL_BACKOFF_S
    while True:
        try:
            return await asyncio.open_connection(
                host, port, ssl=ssl_context
            )
        except ssl.SSLError as exc:
            raise AuthError(f"TLS handshake with {host}:{port} failed: {exc}") from exc
        except (ConnectionError, OSError):
            if loop.time() >= deadline:
                raise
            await asyncio.sleep(min(backoff, max(0.0, deadline - loop.time())))
            backoff = min(backoff * 2, MAX_BACKOFF_S)


async def close_writer(writer) -> None:
    """Close a stream writer without raising on an already-dead peer."""
    with contextlib.suppress(Exception):
        writer.close()
    with contextlib.suppress(asyncio.CancelledError, Exception):
        await writer.wait_closed()


async def heartbeat_loop(send, interval: float) -> None:
    """Call ``send()`` every ``interval`` seconds, forever.

    The worker-side liveness beacon: runs as a task beside the job
    loop and is cancelled at teardown.  ``send`` is an async callable
    that ships one heartbeat frame; transport errors propagate so the
    owner's EOF handling sees them.
    """
    if interval <= 0:
        raise ProtocolError(
            f"heartbeat interval must be positive, got {interval}"
        )
    while True:
        await asyncio.sleep(interval)
        await send()
