"""Baseline anti-cheating schemes the paper builds on or compares with.

* :class:`~repro.baselines.double_check.DoubleCheckScheme` — assign the
  same task to several participants and compare (§1's "straightforward
  solution"; BOINC-style redundancy).  Wastes cycles, ``O(n)`` traffic.
* :class:`~repro.baselines.naive_sampling.NaiveSamplingScheme` — the
  §1 "improved solution": participant returns *all* results, supervisor
  spot-checks ``m``.  Detection like CBS, still ``O(n)`` traffic.
* :class:`~repro.baselines.ringer.RingerScheme` — Golle–Mironov [8]:
  pre-computed secret images the participant must rediscover.  Only
  sound for one-way ``f`` (§1.1) — enforced at construction.
* :class:`~repro.baselines.hardening.HardenedProbeScheme` — Szajda,
  Lawson & Owen [10]-style planted probes for optimization and
  Monte-Carlo workloads where ringers don't apply.
"""

from repro.baselines.double_check import DoubleCheckScheme
from repro.baselines.hardening import HardenedProbeScheme
from repro.baselines.naive_sampling import NaiveSamplingScheme
from repro.baselines.ringer import RingerScheme

__all__ = [
    "DoubleCheckScheme",
    "NaiveSamplingScheme",
    "RingerScheme",
    "HardenedProbeScheme",
]
