"""Naive sampling baseline (paper §1, the "improved solution").

The participant sends **all** ``n`` results to the supervisor, who
re-checks ``m`` random ones.  Detection power matches CBS (the results
were fixed before the samples were drawn, because they are already on
the supervisor's disk), but the communication cost stays ``O(n)`` — the
exact overhead CBS's ``O(m log n)`` commitment replaces.  E3 plots the
two side by side.
"""

from __future__ import annotations

import random

from repro.accounting import CostLedger
from repro.cheating.strategies import Behavior
from repro.core.cbs import transfer
from repro.core.protocol import FullResultsMsg, VerdictMsg
from repro.core.scheme import (
    RejectReason,
    SampleVerdict,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.exceptions import SchemeConfigurationError
from repro.tasks.function import MeteredFunction
from repro.tasks.result import TaskAssignment


class NaiveSamplingScheme(VerificationScheme):
    """Return-everything sampling: strong detection, ``O(n)`` traffic."""

    def __init__(self, n_samples: int, with_replacement: bool = True) -> None:
        if n_samples < 1:
            raise SchemeConfigurationError(f"n_samples must be >= 1, got {n_samples}")
        self.n_samples = n_samples
        self.with_replacement = with_replacement
        self.name = f"naive-sampling(m={n_samples})"

    def run(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        seed: int = 0,
    ) -> SchemeRunResult:
        participant_ledger = CostLedger()
        supervisor_ledger = CostLedger()

        # Participant: compute (per behaviour) and ship everything.
        metered = MeteredFunction(assignment.function, participant_ledger)
        work = behavior.produce(
            assignment, metered.evaluate, salt=seed.to_bytes(8, "big")
        )
        message = FullResultsMsg(
            task_id=assignment.task_id, results=tuple(work.leaf_payloads)
        )
        transfer(message, participant_ledger, supervisor_ledger)

        # Supervisor: spot-check m random results.
        outcome = VerificationOutcome(task_id=assignment.task_id, accepted=True)
        n = assignment.n_inputs
        if len(message.results) != n:
            outcome.accepted = False
            outcome.reason = RejectReason.MISSING_RESULTS
        else:
            rng = random.Random(seed)
            if self.with_replacement:
                indices = [rng.randrange(n) for _ in range(self.n_samples)]
            else:
                indices = rng.sample(range(n), min(self.n_samples, n))
            checker = MeteredFunction(assignment.function, supervisor_ledger)
            for index in indices:
                supervisor_ledger.bump("samples_verified")
                ok = checker.verify(
                    assignment.domain[index], message.results[index]
                )
                outcome.verdicts.append(
                    SampleVerdict(
                        index=index,
                        accepted=ok,
                        reason=RejectReason.OK if ok else RejectReason.WRONG_RESULT,
                    )
                )
                if not ok:
                    outcome.accepted = False
                    outcome.reason = RejectReason.WRONG_RESULT
                    break

        transfer(
            VerdictMsg(
                task_id=assignment.task_id,
                accepted=outcome.accepted,
                reason=outcome.reason.value if not outcome.accepted else "",
            ),
            supervisor_ledger,
            participant_ledger,
        )
        return SchemeRunResult(
            outcome=outcome,
            participant_ledger=participant_ledger,
            supervisor_ledger=supervisor_ledger,
            work=work,
        )
