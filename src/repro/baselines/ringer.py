"""The Golle–Mironov ringer scheme [8] (paper §1.1).

The supervisor pre-computes ``f`` on ``d`` secret inputs drawn from the
participant's subdomain and publishes only the *images* (the ringers).
While sweeping its domain, an honest participant inevitably encounters
every ringer preimage and reports it; a cheater that skipped part of
the domain misses the ringers hiding there — and, because ``f`` is
one-way, cannot find them any other way.

Escape probability for honesty ratio ``r`` with ``d`` ringers is
``≈ r^d`` (hypergeometric without replacement), mirroring CBS's
``r^m`` at ``q = 0``.  The scheme's two structural drawbacks are
exactly what the paper says in §1.1 and what E7 measures:

* it **requires one-way ``f``** — construction refuses otherwise;
* the supervisor pays ``d`` *full evaluations up front* per
  participant, whereas CBS verifies lazily (and may verify cheaply).
"""

from __future__ import annotations

import random

from repro.accounting import CostLedger
from repro.cheating.strategies import Behavior
from repro.core.cbs import transfer
from repro.core.protocol import ReportsMsg, VerdictMsg
from repro.core.scheme import (
    RejectReason,
    SampleVerdict,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.exceptions import SchemeConfigurationError
from repro.tasks.function import MeteredFunction
from repro.tasks.result import TaskAssignment
from repro.utils.encoding import encode_bytes_list


class _RingerAnnouncement:
    """The published ringer images (supervisor → participant)."""

    def __init__(self, task_id: str, images: list[bytes]) -> None:
        self.task_id = task_id
        self.images = images

    def wire_size(self) -> int:
        return len(self.task_id.encode("utf-8")) + len(
            encode_bytes_list(self.images)
        )


class RingerScheme(VerificationScheme):
    """Golle–Mironov ringers: pre-computed secret images.

    Parameters
    ----------
    n_ringers:
        ``d``, the number of planted images per participant.
    require_all:
        Reject unless every ringer is reported (the basic GM scheme).
    """

    def __init__(self, n_ringers: int, require_all: bool = True) -> None:
        if n_ringers < 1:
            raise SchemeConfigurationError(f"n_ringers must be >= 1, got {n_ringers}")
        self.n_ringers = n_ringers
        self.require_all = require_all
        self.name = f"ringer(d={n_ringers})"

    def run(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        seed: int = 0,
    ) -> SchemeRunResult:
        if not assignment.function.one_way:
            raise SchemeConfigurationError(
                "the ringer scheme requires a one-way task function "
                "(paper §1.1); use CBS for generic computations"
            )
        participant_ledger = CostLedger()
        supervisor_ledger = CostLedger()
        n = assignment.n_inputs
        if self.n_ringers > n:
            raise SchemeConfigurationError(
                f"cannot plant {self.n_ringers} ringers in {n} inputs"
            )

        # Supervisor setup: pre-compute d secret images (paid up front).
        rng = random.Random(seed)
        ringer_indices = rng.sample(range(n), self.n_ringers)
        setup = MeteredFunction(assignment.function, supervisor_ledger)
        images = {
            index: setup.evaluate(assignment.domain[index])
            for index in ringer_indices
        }
        announcement = _RingerAnnouncement(
            assignment.task_id, list(images.values())
        )
        transfer(announcement, supervisor_ledger, participant_ledger)

        # Participant: compute per behaviour, report matching inputs.
        metered = MeteredFunction(assignment.function, participant_ledger)
        work = behavior.produce(
            assignment, metered.evaluate, salt=seed.to_bytes(8, "big")
        )
        image_set = set(images.values())
        found = [
            i
            for i, payload in enumerate(work.leaf_payloads)
            if payload in image_set
        ]
        reports = ReportsMsg(
            task_id=assignment.task_id,
            reports=tuple(f"ringer-found:{i}" for i in found),
        )
        transfer(reports, participant_ledger, supervisor_ledger)

        # Supervisor verdict: every planted ringer must be reported.
        outcome = VerificationOutcome(task_id=assignment.task_id, accepted=True)
        found_set = set(found)
        for index in ringer_indices:
            supervisor_ledger.bump("ringers_checked")
            hit = index in found_set
            outcome.verdicts.append(
                SampleVerdict(
                    index=index,
                    accepted=hit,
                    reason=RejectReason.OK if hit else RejectReason.MISSING_RINGER,
                )
            )
            if not hit and self.require_all:
                outcome.accepted = False
                outcome.reason = RejectReason.MISSING_RINGER

        transfer(
            VerdictMsg(
                task_id=assignment.task_id,
                accepted=outcome.accepted,
                reason=outcome.reason.value if not outcome.accepted else "",
            ),
            supervisor_ledger,
            participant_ledger,
        )
        return SchemeRunResult(
            outcome=outcome,
            participant_ledger=participant_ledger,
            supervisor_ledger=supervisor_ledger,
            work=work,
        )
