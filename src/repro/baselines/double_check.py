"""Double-checking baseline (paper §1, the "straightforward solution").

The supervisor assigns the same task to ``replication`` participants
and compares their full result vectors (majority vote for three or
more replicas, exact agreement for two).  Detection is very strong —
a cheater is caught whenever any fabricated value disagrees with the
honest majority — but the price is the paper's complaint: the grid
performs the work ``k`` times ("wastage of processor cycles") and each
replica ships ``O(n)`` results.

The scheme interface evaluates the *subject* participant (the given
behaviour); replica behaviours are configurable so experiments can
model colluding or independently-cheating replicas.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.accounting import CostLedger
from repro.cheating.strategies import Behavior, HonestBehavior
from repro.core.cbs import transfer
from repro.core.protocol import FullResultsMsg, VerdictMsg
from repro.core.scheme import (
    RejectReason,
    SampleVerdict,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.exceptions import SchemeConfigurationError
from repro.tasks.function import MeteredFunction
from repro.tasks.result import TaskAssignment


class DoubleCheckScheme(VerificationScheme):
    """``k``-way replication with exact/majority comparison.

    Parameters
    ----------
    replication:
        Total number of participants computing the task (k >= 2).
    replica_behaviors:
        Behaviours for the ``k − 1`` non-subject replicas; defaults to
        all-honest.  Cycled if shorter than needed.
    """

    def __init__(
        self,
        replication: int = 2,
        replica_behaviors: Sequence[Behavior] | None = None,
    ) -> None:
        if replication < 2:
            raise SchemeConfigurationError(
                f"replication must be >= 2, got {replication}"
            )
        self.replication = replication
        self.replica_behaviors = (
            list(replica_behaviors) if replica_behaviors else [HonestBehavior()]
        )
        self.name = f"double-check(k={replication})"

    def run(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        seed: int = 0,
    ) -> SchemeRunResult:
        participant_ledger = CostLedger()
        supervisor_ledger = CostLedger()
        replicas_ledger = CostLedger()

        # Subject participant.
        metered = MeteredFunction(assignment.function, participant_ledger)
        work = behavior.produce(
            assignment, metered.evaluate, salt=seed.to_bytes(8, "big")
        )
        transfer(
            FullResultsMsg(
                task_id=assignment.task_id, results=tuple(work.leaf_payloads)
            ),
            participant_ledger,
            supervisor_ledger,
        )

        # Replicas (their cycles are the waste the paper laments).
        replica_vectors: list[list[bytes]] = []
        for j in range(self.replication - 1):
            replica_behavior = self.replica_behaviors[j % len(self.replica_behaviors)]
            replica_metered = MeteredFunction(assignment.function, replicas_ledger)
            replica_work = replica_behavior.produce(
                assignment,
                replica_metered.evaluate,
                salt=(seed * 31 + j + 1).to_bytes(8, "big"),
            )
            transfer(
                FullResultsMsg(
                    task_id=assignment.task_id,
                    results=tuple(replica_work.leaf_payloads),
                ),
                replicas_ledger,
                supervisor_ledger,
            )
            replica_vectors.append(replica_work.leaf_payloads)

        # Supervisor: per-index agreement check.
        outcome = VerificationOutcome(task_id=assignment.task_id, accepted=True)
        n = assignment.n_inputs
        for index in range(n):
            supervisor_ledger.bump("comparisons")
            votes = Counter(vec[index] for vec in replica_vectors)
            votes[work.leaf_payloads[index]] += 1
            majority_value, majority_count = votes.most_common(1)[0]
            agreed = (
                work.leaf_payloads[index] == majority_value
                and majority_count * 2 > self.replication
            )
            if not agreed:
                outcome.verdicts.append(
                    SampleVerdict(
                        index=index,
                        accepted=False,
                        reason=RejectReason.REPLICA_DISAGREEMENT,
                    )
                )
                outcome.accepted = False
                outcome.reason = RejectReason.REPLICA_DISAGREEMENT
                break

        transfer(
            VerdictMsg(
                task_id=assignment.task_id,
                accepted=outcome.accepted,
                reason=outcome.reason.value if not outcome.accepted else "",
            ),
            supervisor_ledger,
            participant_ledger,
        )
        return SchemeRunResult(
            outcome=outcome,
            participant_ledger=participant_ledger,
            supervisor_ledger=supervisor_ledger,
            work=work,
            other_ledger=replicas_ledger,
        )
