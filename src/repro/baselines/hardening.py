"""Szajda–Lawson–Owen-style hardening [10] for non-one-way workloads.

Golle–Mironov ringers need a one-way ``f``; Szajda et al. extend the
idea to optimization and Monte-Carlo computations by planting *probes*
— inputs whose results the supervisor pre-computed — that are
indistinguishable from ordinary inputs.  Because ``f`` is not one-way,
the images cannot be published (a cheater could grep for them without
doing the work); instead the participant must return its full result
vector and the supervisor audits the planted positions.

This preserves the two properties the paper's comparison needs (E7):

* unlike ringers, it works for guessable/generic ``f`` — but a
  cheater's guess still slips through with probability ``q`` per
  missed probe, so detection degrades exactly like naive sampling;
* unlike CBS, the traffic stays ``O(n)`` (full vector on the wire) and
  the supervisor pays ``d`` full evaluations *up front* per task.

The implementation is a faithful simplification: the published scheme
also randomizes task boundaries and seeds sub-sequences for Monte-Carlo
workloads; those engineering layers do not change the cost/detection
shape measured here (see DESIGN.md substitution table).
"""

from __future__ import annotations

import random

from repro.accounting import CostLedger
from repro.cheating.strategies import Behavior
from repro.core.cbs import transfer
from repro.core.protocol import FullResultsMsg, VerdictMsg
from repro.core.scheme import (
    RejectReason,
    SampleVerdict,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.exceptions import SchemeConfigurationError
from repro.tasks.function import MeteredFunction
from repro.tasks.result import TaskAssignment


class HardenedProbeScheme(VerificationScheme):
    """Planted secret probes with full-result return.

    Parameters
    ----------
    n_probes:
        Number of pre-computed audit positions per task.
    """

    def __init__(self, n_probes: int) -> None:
        if n_probes < 1:
            raise SchemeConfigurationError(f"n_probes must be >= 1, got {n_probes}")
        self.n_probes = n_probes
        self.name = f"hardened-probes(d={n_probes})"

    def run(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        seed: int = 0,
    ) -> SchemeRunResult:
        participant_ledger = CostLedger()
        supervisor_ledger = CostLedger()
        n = assignment.n_inputs
        if self.n_probes > n:
            raise SchemeConfigurationError(
                f"cannot plant {self.n_probes} probes in {n} inputs"
            )

        # Supervisor setup: secretly pre-compute the probe results.
        rng = random.Random(seed)
        probe_indices = rng.sample(range(n), self.n_probes)
        setup = MeteredFunction(assignment.function, supervisor_ledger)
        expected = {
            index: setup.evaluate(assignment.domain[index])
            for index in probe_indices
        }

        # Participant: compute per behaviour and ship everything
        # (probes are indistinguishable, so nothing narrower works).
        metered = MeteredFunction(assignment.function, participant_ledger)
        work = behavior.produce(
            assignment, metered.evaluate, salt=seed.to_bytes(8, "big")
        )
        message = FullResultsMsg(
            task_id=assignment.task_id, results=tuple(work.leaf_payloads)
        )
        transfer(message, participant_ledger, supervisor_ledger)

        # Audit the planted positions.
        outcome = VerificationOutcome(task_id=assignment.task_id, accepted=True)
        if len(message.results) != n:
            outcome.accepted = False
            outcome.reason = RejectReason.MISSING_RESULTS
        else:
            for index in probe_indices:
                supervisor_ledger.bump("probes_checked")
                ok = message.results[index] == expected[index]
                outcome.verdicts.append(
                    SampleVerdict(
                        index=index,
                        accepted=ok,
                        reason=RejectReason.OK if ok else RejectReason.WRONG_RESULT,
                    )
                )
                if not ok:
                    outcome.accepted = False
                    outcome.reason = RejectReason.WRONG_RESULT
                    break

        transfer(
            VerdictMsg(
                task_id=assignment.task_id,
                accepted=outcome.accepted,
                reason=outcome.reason.value if not outcome.accepted else "",
            ),
            supervisor_ledger,
            participant_ledger,
        )
        return SchemeRunResult(
            outcome=outcome,
            participant_ledger=participant_ledger,
            supervisor_ledger=supervisor_ledger,
            work=work,
        )
