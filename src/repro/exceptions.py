"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class.  The hierarchy mirrors the main
subsystems:

* :class:`MerkleError` — malformed trees, out-of-range leaves, bad
  authentication paths.
* :class:`ProtocolError` — messages arriving out of order, duplicated
  commitments, unknown participants.
* :class:`VerificationError` — a *detected* cheating attempt.  Note that
  schemes usually report cheating through a
  :class:`repro.core.scheme.VerificationOutcome` rather than raising;
  this exception is reserved for callers that prefer raising semantics.
* :class:`TaskError` — invalid domains, unsupported workload
  configurations.
* :class:`SchemeConfigurationError` — a scheme applied to a workload it
  does not support (e.g. the ringer scheme on a non-one-way function,
  exactly the restriction §1.1 of the paper discusses).
* :class:`CodecError` — wire-format encode/decode failures.
* :class:`AuthError` — a transport-level authentication handshake
  failed (wrong shared secret, malformed or truncated handshake
  frames, handshake timeout).  A :class:`ProtocolError` subclass so
  every existing connection-level handler already rejects it cleanly.
* :class:`EngineError` — execution-engine (executor backend)
  misconfiguration: unknown backend names, invalid worker counts,
  submission to a closed executor.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class MerkleError(ReproError):
    """A Merkle tree operation failed (bad index, malformed proof...)."""


class EmptyTreeError(MerkleError):
    """A Merkle tree was requested over zero leaves."""


class LeafIndexError(MerkleError):
    """A leaf index was outside ``[0, n_leaves)``."""


class ProofShapeError(MerkleError):
    """An authentication path had the wrong length or digest sizes."""


class ProtocolError(ReproError):
    """A protocol message arrived out of order or was malformed."""


class VerificationError(ReproError):
    """Raised (optionally) when a participant is caught cheating."""


class TaskError(ReproError):
    """A task, domain or workload was configured inconsistently."""


class DomainError(TaskError):
    """An input domain was empty, unordered or out of range."""


class SchemeConfigurationError(ReproError):
    """A verification scheme cannot be applied to the given workload.

    The canonical instance: the Golle–Mironov ringer scheme requires a
    one-way ``f`` (paper §1.1); applying it to a guessable function
    raises this error instead of silently producing a useless defence.
    """


class CodecError(ReproError):
    """Wire-format encoding or decoding failed."""


class AuthError(ProtocolError):
    """A transport authentication handshake failed or was malformed."""


class EngineError(ReproError):
    """An execution-engine backend was misconfigured or misused."""


class LedgerError(ReproError):
    """An accounting operation was invalid (e.g. negative charge)."""
