"""Session and commitment store for the supervisor service.

The GRACE supervisor (§4) is long-lived: thousands of participants it
never meets take assignments, and some of them vanish mid-protocol —
after the commitment, before the proofs.  The store tracks every
task's assignment → commitment → outcome lifecycle, rejects protocol
replays (duplicate ``task_id``s, second commitments), and evicts
abandoned interactive sessions after a TTL so a slow-loris population
cannot pin supervisor memory forever.

The store is event-loop-local state: the asyncio server mutates it
only from the loop thread, so no locking is needed.  Time is an
injectable monotonic clock, which is what makes eviction testable
without real sleeps.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.protocol import CommitmentMsg, SampleChallengeMsg
from repro.core.scheme import VerificationOutcome
from repro.exceptions import ProtocolError
from repro.obs.metrics import MetricsRegistry
from repro.tasks.result import TaskAssignment


class SessionState(enum.Enum):
    """Where one task sits in its verification lifecycle."""

    ASSIGNED = "assigned"    # assignment sent, nothing received yet
    COMMITTED = "committed"  # CBS commitment in, challenge issued
    VERIFYING = "verifying"  # proofs/submission in, worker verifying
    DONE = "done"            # verdict recorded


@dataclass
class Session:
    """One task's lifecycle record."""

    task_id: str
    participant: int
    assignment: TaskAssignment
    seed: int
    protocol: str
    created_at: float
    touched_at: float
    state: SessionState = SessionState.ASSIGNED
    commitment: CommitmentMsg | None = None
    challenge: SampleChallengeMsg | None = None
    outcome: VerificationOutcome | None = None
    # Optional trace context the client sent with its task request;
    # every log record and verdict for this task carries these ids.
    trace_id: str | None = None
    span_id: str | None = None


class StoreStats:
    """Compatibility view over the ``repro_sessions_total`` counter.

    Before the observability plane these were a private dataclass of
    ints; they now live in the store's :class:`MetricsRegistry` as one
    labelled counter, and this view keeps the established read API
    (``store.stats.created`` etc.) working unchanged.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._counter = registry.counter(
            "repro_sessions_total",
            "Session lifecycle events, by event kind",
            ("event",),
        )

    def _value(self, event: str) -> int:
        return int(self._counter.labels(event=event).value)

    @property
    def created(self) -> int:
        return self._value("created")

    @property
    def completed(self) -> int:
        return self._value("completed")

    @property
    def evicted(self) -> int:
        return self._value("evicted")

    @property
    def rejected_duplicates(self) -> int:
        return self._value("rejected_duplicate")


class SessionStore:
    """Lifecycle store with TTL eviction for abandoned sessions."""

    def __init__(
        self,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if ttl <= 0:
            raise ProtocolError(f"session ttl must be positive, got {ttl}")
        self.ttl = ttl
        self.clock = clock
        # A store owned by a server shares the server's registry; a
        # standalone store gets a private one so embedded/test uses
        # stay exactly-counted and isolated.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.stats = StoreStats(self.registry)
        self._events = self.registry.counter(
            "repro_sessions_total",
            "Session lifecycle events, by event kind",
            ("event",),
        )
        self._sessions: dict[str, Session] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def create(
        self,
        task_id: str,
        participant: int,
        assignment: TaskAssignment,
        seed: int,
        protocol: str,
        trace_id: str | None = None,
        span_id: str | None = None,
    ) -> Session:
        """Open a session; duplicate ``task_id``s are rejected."""
        if task_id in self._sessions:
            self._events.labels(event="rejected_duplicate").inc()
            raise ProtocolError(f"task {task_id!r} already assigned")
        now = self.clock()
        session = Session(
            task_id=task_id,
            participant=participant,
            assignment=assignment,
            seed=seed,
            protocol=protocol,
            created_at=now,
            touched_at=now,
            trace_id=trace_id,
            span_id=span_id,
        )
        self._sessions[task_id] = session
        self._events.labels(event="created").inc()
        return session

    def peek(self, task_id: str) -> Session | None:
        """Look up a session without touching its TTL clock."""
        return self._sessions.get(task_id)

    def get(self, task_id: str) -> Session:
        """Look up a live session (evicted/unknown ids are equivalent)."""
        session = self._sessions.get(task_id)
        if session is None:
            raise ProtocolError(f"unknown task {task_id!r}")
        # Monotone clamp: the clock is supposed to be monotonic, but an
        # injectable (or broken) one may jump backwards.  Letting
        # ``touched_at`` move back in time would make the session look
        # ancient the moment the clock recovers — and evict a live
        # participant mid-protocol.  Idle age may only shrink on touch.
        session.touched_at = max(session.touched_at, self.clock())
        return session

    def record_commitment(
        self,
        task_id: str,
        commitment: CommitmentMsg,
        challenge: SampleChallengeMsg,
    ) -> Session:
        """CBS step 1→2 transition; duplicate commitments are replays."""
        session = self.get(task_id)
        if session.state is not SessionState.ASSIGNED:
            raise ProtocolError(
                f"task {task_id!r} already has a commitment "
                f"(state {session.state.value})"
            )
        session.commitment = commitment
        session.challenge = challenge
        session.state = SessionState.COMMITTED
        return session

    def begin_verification(
        self, task_id: str, from_state: SessionState
    ) -> Session:
        """Claim a session for (possibly off-loop) verification.

        The transition happens *before* the expensive work is
        dispatched, so concurrent replays of the same proofs or
        submission fail fast here instead of each burning a worker
        slot on a full verification.
        """
        session = self.get(task_id)
        if session.state is not from_state:
            raise ProtocolError(
                f"task {task_id!r} not ready for verification "
                f"(state {session.state.value}, expected {from_state.value})"
            )
        session.state = SessionState.VERIFYING
        return session

    def record_outcome(
        self, task_id: str, outcome: VerificationOutcome
    ) -> Session:
        """Terminal transition: the verdict is in."""
        session = self.get(task_id)
        if session.state is SessionState.DONE:
            raise ProtocolError(f"task {task_id!r} already verified")
        session.outcome = outcome
        session.state = SessionState.DONE
        self._events.labels(event="completed").inc()
        return session

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def evict_stale(self) -> list[str]:
        """Drop unfinished sessions idle past the TTL; return their ids.

        Completed sessions are kept — their outcomes are the service's
        product (the detection report) — only abandoned interactive
        state is reclaimed.  A participant returning after eviction
        sees ``unknown task``, exactly as if it had never been
        assigned.

        Ages are clamped at zero: a clock that jumped backwards makes
        sessions look *newer*, never older, so a live session can
        never be evicted by a negative age — it just gets a little
        extra grace until real time catches up.
        """
        now = self.clock()
        stale = [
            task_id
            for task_id, session in self._sessions.items()
            if session.state is not SessionState.DONE
            and max(0.0, now - session.touched_at) > self.ttl
        ]
        for task_id in stale:
            del self._sessions[task_id]
        if stale:
            self._events.labels(event="evicted").inc(len(stale))
        return stale

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def outcomes(self) -> dict[str, VerificationOutcome]:
        """Verdicts for every completed task."""
        return {
            task_id: session.outcome
            for task_id, session in self._sessions.items()
            if session.state is SessionState.DONE
            and session.outcome is not None
        }

    @property
    def active(self) -> int:
        """Sessions still mid-protocol."""
        return sum(
            1
            for session in self._sessions.values()
            if session.state is not SessionState.DONE
        )

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._sessions
