"""Module-level verification jobs the service plane offloads.

These are the CPU-bound proof verifications the supervisor ships to
the execution engine (:meth:`SupervisorServer._offload`).  They live in
their own dependency-light module — not in ``server.py`` — because
they are wire entry points: the cluster backend dispatches them by
registered name through :mod:`repro.service.jobcodec`, and the codec's
default registry must be importable without dragging in the whole
asyncio server (and without an import cycle).

Everything a verdict depends on is deterministic given the arguments —
the challenge re-drawn from ``seed`` matches the one the server issued
— so a rebuilt supervisor reproduces exactly what a long-lived
in-process session would have computed.
"""

from __future__ import annotations

from repro.core.cbs import CBSSupervisor
from repro.core.ni_cbs import NICBSSupervisor
from repro.core.protocol import CommitmentMsg, NICBSSubmissionMsg, ProofBundleMsg
from repro.core.scheme import VerificationOutcome
from repro.merkle.hashing import get_hash
from repro.merkle.tree import LeafEncoding
from repro.tasks.result import TaskAssignment

__all__ = ["verify_cbs_job", "verify_nicbs_job"]


def verify_cbs_job(
    assignment: TaskAssignment,
    n_samples: int,
    hash_name: str,
    leaf_encoding_value: str,
    seed: int,
    commitment: CommitmentMsg,
    bundle: ProofBundleMsg,
) -> VerificationOutcome:
    """Rebuild the CBS supervisor and run Step 4 in a pooled worker."""
    supervisor = CBSSupervisor(
        assignment,
        n_samples=n_samples,
        hash_fn=get_hash(hash_name),
        leaf_encoding=LeafEncoding(leaf_encoding_value),
        seed=seed,
    )
    supervisor.receive_commitment(commitment)
    supervisor.make_challenge()
    return supervisor.verify(bundle)


def verify_nicbs_job(
    assignment: TaskAssignment,
    n_samples: int,
    sample_hash_name: str,
    hash_name: str,
    leaf_encoding_value: str,
    submission: NICBSSubmissionMsg,
) -> VerificationOutcome:
    """One-shot NI-CBS verification in a pooled worker."""
    supervisor = NICBSSupervisor(
        assignment,
        n_samples=n_samples,
        sample_hash=get_hash(sample_hash_name),
        hash_fn=get_hash(hash_name),
        leaf_encoding=LeafEncoding(leaf_encoding_value),
    )
    return supervisor.verify(submission)
