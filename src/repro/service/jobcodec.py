"""Typed binary job codec: cluster jobs are data, not code.

Cluster wire v5 replaces the pickle envelope.  A job on the wire is a
``(callable-name, args, kwargs)`` triple encoded with a restricted,
versioned, schema-checked value codec: every value is a tagged binary
term from a closed vocabulary (primitives, containers, registered
structs, registered callables), every field is size-capped, and any
byte sequence outside the vocabulary is rejected with
:class:`~repro.exceptions.CodecError` before anything is constructed.
Nothing in a payload can name a module, a class path, or an attribute
chain — the two registries below are the *only* way bytes become
objects, so a coordinator port is no longer a remote-code-execution
surface.

Vocabulary (one tag byte per term; varints are LEB128 as in
:mod:`repro.utils.encoding`):

====  =========  ====================================================
tag   name       encoding
====  =========  ====================================================
0x00  none       —
0x01  true       —
0x02  false      —
0x03  int        zigzag varint (|x| < 2^63)
0x04  bigint     sign byte + length-prefixed big-endian magnitude
0x05  float      8-byte IEEE-754 big-endian
0x06  str        varint length + UTF-8 bytes (capped)
0x07  bytes      varint length + raw bytes (capped)
0x08  tuple      varint count + items
0x09  list       varint count + items
0x0A  dict       varint count + key/value term pairs
0x0B  set        varint count + items (encoded-bytes sorted)
0x0C  struct     name ref + varint body length + packed fields
0x0D  callable   name ref (resolved via the callable registry)
0x0E  ref        varint back-reference into the payload's object memo
====  =========  ====================================================

**Struct registry.**  Domain objects (schemes, behaviours, workloads,
domains, outcome records) cross the wire as named structs: ``pack``
reduces an instance to a tuple of codec values, ``unpack`` rebuilds it
through the real constructor, which re-validates every parameter.
Struct names are interned per payload (first use spells the name,
later uses are a 2-byte index) and instances are memoized by identity
(a behaviour shared by fifty jobs in a batch is encoded once and
back-referenced), which is what makes the typed envelope several times
smaller than the pickle envelope it replaces.

**Callable registry.**  A payload can only invoke a callable that both
sides registered under an explicit name at import time
(:func:`register_callable`).  There is deliberately no import-by-name
fallback: an unregistered name is a :class:`CodecError`, never an
``importlib`` call.  Workers preload registration modules via
``--preload`` (operator-controlled argv, never wire-controlled).

**Scheme cache.**  Structs registered ``cacheable=True`` (the
stateless verification schemes) have self-contained bodies: the body
bytes are a canonical key, so a worker can keep a bounded LRU
(:class:`SchemeCache`) mapping ``(name, body)`` to the constructed
instance and skip both decode and construction for every chunk of a
population after the first — scheme construction happens once per
worker, not once per chunk.  Cache traffic is counted on
``repro_scheme_cache_{hits,misses}_total``.
"""

from __future__ import annotations

import struct as _struct
import threading
from typing import Any, Callable, NamedTuple

from repro.exceptions import CodecError
from repro.net.framing import MAX_CLUSTER_PAYLOAD_BYTES, check_payload_size
from repro.utils.encoding import encode_uint, read_uint

__all__ = [
    "MAX_CONTAINER_ITEMS",
    "MAX_DEPTH",
    "MAX_FIELD_BYTES",
    "MAX_INT_BYTES",
    "MAX_NAME_BYTES",
    "SchemeCache",
    "decode_cluster_chunk",
    "decode_cluster_outcomes",
    "decode_cluster_payload",
    "decode_job",
    "encode_cluster_chunk",
    "encode_cluster_outcomes",
    "encode_cluster_payload",
    "encode_job",
    "ensure_default_registry",
    "register_callable",
    "register_struct",
    "registered_callables",
    "registered_structs",
]


# ----------------------------------------------------------------------
# Size caps (per field, enforced on both encode and decode)
# ----------------------------------------------------------------------

#: Ceiling on one str/bytes field.  Leaf-payload vectors and streamed
#: result values stay far below this; the whole payload is additionally
#: bounded by ``MAX_CLUSTER_PAYLOAD_BYTES``.
MAX_FIELD_BYTES = 8 * 1024 * 1024
#: Ceiling on one container's element count.
MAX_CONTAINER_ITEMS = 1 << 21
#: Ceiling on term nesting depth.
MAX_DEPTH = 64
#: Ceiling on a registry (struct/callable) name.
MAX_NAME_BYTES = 120
#: Ceiling on a bigint magnitude in bytes.
MAX_INT_BYTES = 4096


class Tag:
    """Wire tag byte for each term kind (see the module table)."""

    NONE = 0x00
    TRUE = 0x01
    FALSE = 0x02
    INT = 0x03
    BIGINT = 0x04
    FLOAT = 0x05
    STR = 0x06
    BYTES = 0x07
    TUPLE = 0x08
    LIST = 0x09
    DICT = 0x0A
    SET = 0x0B
    STRUCT = 0x0C
    CALLABLE = 0x0D
    REF = 0x0E


#: Human-readable tag names (docs, errors, and the RL006 tag table).
_TAG_NAMES = {
    Tag.NONE: "none",
    Tag.TRUE: "true",
    Tag.FALSE: "false",
    Tag.INT: "int",
    Tag.BIGINT: "bigint",
    Tag.FLOAT: "float",
    Tag.STR: "str",
    Tag.BYTES: "bytes",
    Tag.TUPLE: "tuple",
    Tag.LIST: "list",
    Tag.DICT: "dict",
    Tag.SET: "set",
    Tag.STRUCT: "struct",
    Tag.CALLABLE: "callable",
    Tag.REF: "ref",
}

_INT_LIMIT = 1 << 63  # |x| below this rides the zigzag varint path


def _check_field_size(what: str, size: int, limit: int) -> None:
    """Reject an oversized field before any allocation happens."""
    if size > limit:
        raise CodecError(f"{what} of {size} bytes exceeds limit {limit}")


def _check_count(what: str, count: int) -> None:
    if count > MAX_CONTAINER_ITEMS:
        raise CodecError(
            f"{what} of {count} items exceeds limit {MAX_CONTAINER_ITEMS}"
        )


# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------


class _StructSpec(NamedTuple):
    name: str
    cls: type
    pack: Callable[[Any], tuple]
    unpack: Callable[[tuple], Any]
    cacheable: bool


_registry_lock = threading.Lock()
_STRUCTS: dict[str, _StructSpec] = {}
_STRUCTS_BY_TYPE: dict[type, _StructSpec] = {}
_CALLABLES: dict[str, Callable] = {}
_CALLABLE_NAMES: dict[Callable, str] = {}
_defaults_loaded = False


def register_struct(
    name: str,
    cls: type,
    pack: Callable[[Any], tuple],
    unpack: Callable[[tuple], Any],
    cacheable: bool = False,
) -> None:
    """Register a type that may cross the cluster wire as a struct.

    ``pack(obj)`` must return a tuple of codec-encodable values;
    ``unpack(fields)`` must rebuild an equivalent instance (normally by
    calling the real constructor so parameter validation re-runs on the
    receiving side).  ``cacheable`` marks stateless types whose decoded
    instances may be shared across jobs and chunks by a
    :class:`SchemeCache` — only mark a type cacheable if two runs
    through the same instance are byte-identical to two fresh
    instances.  Dispatch is by exact type: subclasses need their own
    registration.
    """
    if len(name.encode("utf-8")) > MAX_NAME_BYTES:
        raise CodecError(f"struct name too long: {name!r}")
    with _registry_lock:
        existing = _STRUCTS.get(name)
        if existing is not None and existing.cls is not cls:
            raise CodecError(
                f"struct name {name!r} already registered for "
                f"{existing.cls.__name__}"
            )
        spec = _StructSpec(name, cls, pack, unpack, cacheable)
        _STRUCTS[name] = spec
        _STRUCTS_BY_TYPE[cls] = spec


def register_callable(name: str, fn: Callable) -> None:
    """Register a callable a job payload may name.

    Both the coordinator (encode) and every worker (decode) must run
    the same registration, normally at import of the defining module;
    workers reach non-default modules via ``--preload``.  Re-registering
    the same ``(name, fn)`` pair is a no-op; clashing registrations
    fail loudly.
    """
    if len(name.encode("utf-8")) > MAX_NAME_BYTES:
        raise CodecError(f"callable name too long: {name!r}")
    if not callable(fn):
        raise CodecError(f"{name!r} is not callable")
    with _registry_lock:
        existing = _CALLABLES.get(name)
        if existing is not None and existing is not fn:
            raise CodecError(f"callable name {name!r} already registered")
        _CALLABLES[name] = fn
        _CALLABLE_NAMES[fn] = name


def registered_structs() -> dict[str, type]:
    """Snapshot of the struct registry (docs and round-trip tests)."""
    ensure_default_registry()
    with _registry_lock:
        return {name: spec.cls for name, spec in sorted(_STRUCTS.items())}


def registered_callables() -> dict[str, Callable]:
    """Snapshot of the callable registry."""
    ensure_default_registry()
    with _registry_lock:
        return dict(sorted(_CALLABLES.items()))


# ----------------------------------------------------------------------
# Encoder
# ----------------------------------------------------------------------


class _Encoder:
    """One payload's encoding pass: byte sink + interning state."""

    def __init__(self) -> None:
        self.out = bytearray()
        # Object memo: id(obj) -> back-reference index, pre-order.
        self.memo: dict[int, int] = {}
        # Objects must outlive the pass so ids cannot be recycled.
        self.keepalive: list[Any] = []
        # Name interning: registry name -> index of first spelling.
        self.names: dict[str, int] = {}

    def emit_name(self, name: str) -> None:
        """Interned name: 0 = literal follows, k = names[k - 1]."""
        index = self.names.get(name)
        if index is not None:
            self.out += encode_uint(index + 1)
            return
        raw = name.encode("utf-8")
        self.out += encode_uint(0)
        self.out += encode_uint(len(raw))
        self.out += raw
        self.names[name] = len(self.names)

    def value(self, obj: Any, depth: int = 0) -> None:
        if depth > MAX_DEPTH:
            raise CodecError(f"value nesting exceeds depth limit {MAX_DEPTH}")
        out = self.out
        if obj is None:
            out.append(Tag.NONE)
        elif obj is True:
            out.append(Tag.TRUE)
        elif obj is False:
            out.append(Tag.FALSE)
        elif type(obj) is int:
            self._int(obj)
        elif type(obj) is float:
            out.append(Tag.FLOAT)
            out += _struct.pack(">d", obj)
        elif type(obj) is str:
            raw = obj.encode("utf-8")
            _check_field_size("str field", len(raw), MAX_FIELD_BYTES)
            out.append(Tag.STR)
            out += encode_uint(len(raw))
            out += raw
        elif type(obj) in (bytes, bytearray, memoryview):
            raw = bytes(obj)
            _check_field_size("bytes field", len(raw), MAX_FIELD_BYTES)
            out.append(Tag.BYTES)
            out += encode_uint(len(raw))
            out += raw
        elif type(obj) is tuple:
            self._items(Tag.TUPLE, obj, depth)
        elif type(obj) is list:
            self._items(Tag.LIST, obj, depth)
        elif type(obj) is dict:
            _check_count("dict", len(obj))
            out.append(Tag.DICT)
            out += encode_uint(len(obj))
            for key, val in obj.items():
                self.value(key, depth + 1)
                self.value(val, depth + 1)
        elif type(obj) in (set, frozenset):
            self._set(obj, depth)
        else:
            self._registered(obj, depth)

    def _int(self, obj: int) -> None:
        if -_INT_LIMIT < obj < _INT_LIMIT:
            self.out.append(Tag.INT)
            zigzag = (obj << 1) ^ (obj >> 63) if obj < 0 else obj << 1
            self.out += encode_uint(zigzag)
            return
        magnitude = abs(obj)
        raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8, "big")
        _check_field_size("bigint field", len(raw), MAX_INT_BYTES)
        self.out.append(Tag.BIGINT)
        self.out.append(1 if obj < 0 else 0)
        self.out += encode_uint(len(raw))
        self.out += raw

    def _items(self, tag: int, obj: Any, depth: int) -> None:
        _check_count(_TAG_NAMES[tag], len(obj))
        self.out.append(tag)
        self.out += encode_uint(len(obj))
        for item in obj:
            self.value(item, depth + 1)

    def _set(self, obj: Any, depth: int) -> None:
        _check_count("set", len(obj))
        # Canonical order: sort by each element's own encoding, so the
        # bytes never depend on hash seeds or insertion history.
        encoded: list[bytes] = []
        for item in obj:
            sub = _Encoder()
            sub.value(item, depth + 1)
            encoded.append(bytes(sub.out))
        self.out.append(Tag.SET)
        self.out += encode_uint(len(encoded))
        for raw in sorted(encoded):
            self.out += raw

    def _registered(self, obj: Any, depth: int) -> None:
        ref = self.memo.get(id(obj))
        if ref is not None:
            self.out.append(Tag.REF)
            self.out += encode_uint(ref)
            return
        if callable(obj):
            name = _CALLABLE_NAMES.get(obj)
            if name is not None:
                self._remember(obj)
                self.out.append(Tag.CALLABLE)
                self.emit_name(name)
                return
        spec = _STRUCTS_BY_TYPE.get(type(obj))
        if spec is None:
            raise CodecError(
                f"type {type(obj).__name__} is not encodable on the "
                "cluster wire: register it with "
                "repro.service.jobcodec.register_struct (or "
                "register_callable for functions)"
            )
        self._remember(obj)
        fields = spec.pack(obj)
        if type(fields) is not tuple:
            raise CodecError(
                f"pack for struct {spec.name!r} must return a tuple"
            )
        # Tag and name go out before the body is encoded so shared
        # name-interning indices are assigned in the same order the
        # decoder will observe them.
        self.out.append(Tag.STRUCT)
        self.emit_name(spec.name)
        if spec.cacheable:
            # Self-contained body: fresh interning state, so the body
            # bytes are a canonical SchemeCache key.
            sub = _Encoder()
            sub.value(fields, 0)
        else:
            sub = _Encoder()
            sub.memo = self.memo
            sub.keepalive = self.keepalive
            sub.names = self.names
            sub.value(fields, depth + 1)
        body = bytes(sub.out)
        self.out += encode_uint(len(body))
        self.out += body

    def _remember(self, obj: Any) -> None:
        self.memo[id(obj)] = len(self.memo)
        self.keepalive.append(obj)


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------

_UNFILLED = object()  # placeholder for a struct still being decoded


class _Decoder:
    """One payload's decoding pass over an immutable byte buffer."""

    def __init__(self, data: bytes, cache: "SchemeCache | None") -> None:
        self.data = data
        self.pos = 0
        self.cache = cache
        self.memo: list[Any] = []
        self.names: list[str] = []

    def take(self, n: int, what: str) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise CodecError(f"truncated {what} (wanted {n} bytes)")
        raw = self.data[self.pos:end]
        self.pos = end
        return raw

    def uint(self, what: str) -> int:
        try:
            value, self.pos = read_uint(self.data, self.pos)
        except CodecError as exc:
            raise CodecError(f"bad varint in {what}: {exc}") from exc
        return value

    def name(self) -> str:
        ref = self.uint("name reference")
        if ref == 0:
            length = self.uint("name length")
            _check_field_size("registry name", length, MAX_NAME_BYTES)
            raw = self.take(length, "registry name")
            try:
                name = raw.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CodecError(f"registry name is not UTF-8: {exc}") from exc
            self.names.append(name)
            return name
        if ref > len(self.names):
            raise CodecError(f"name reference {ref} out of range")
        return self.names[ref - 1]

    def value(self, depth: int = 0) -> Any:
        if depth > MAX_DEPTH:
            raise CodecError(f"value nesting exceeds depth limit {MAX_DEPTH}")
        tag = self.take(1, "tag")[0]
        decoder = _DECODERS.get(tag)
        if decoder is None:
            raise CodecError(f"unknown value tag 0x{tag:02x}")
        return decoder(self, depth)


def _dec_none(dec: _Decoder, depth: int) -> None:
    return None


def _dec_true(dec: _Decoder, depth: int) -> bool:
    return True


def _dec_false(dec: _Decoder, depth: int) -> bool:
    return False


def _dec_int(dec: _Decoder, depth: int) -> int:
    zigzag = dec.uint("int")
    if zigzag >> 64:
        raise CodecError(f"int term out of range: zigzag {zigzag}")
    return -(zigzag >> 1) - 1 if zigzag & 1 else zigzag >> 1


def _dec_bigint(dec: _Decoder, depth: int) -> int:
    sign = dec.take(1, "bigint sign")[0]
    if sign not in (0, 1):
        raise CodecError(f"bad bigint sign byte {sign}")
    length = dec.uint("bigint length")
    _check_field_size("bigint field", length, MAX_INT_BYTES)
    magnitude = int.from_bytes(dec.take(length, "bigint"), "big")
    if magnitude < _INT_LIMIT:
        raise CodecError("bigint used for a value that fits the int tag")
    return -magnitude if sign else magnitude


def _dec_float(dec: _Decoder, depth: int) -> float:
    return _struct.unpack(">d", dec.take(8, "float"))[0]


def _dec_str(dec: _Decoder, depth: int) -> str:
    length = dec.uint("str length")
    _check_field_size("str field", length, MAX_FIELD_BYTES)
    raw = dec.take(length, "str")
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"str field is not UTF-8: {exc}") from exc


def _dec_bytes(dec: _Decoder, depth: int) -> bytes:
    length = dec.uint("bytes length")
    _check_field_size("bytes field", length, MAX_FIELD_BYTES)
    return dec.take(length, "bytes")


def _dec_tuple(dec: _Decoder, depth: int) -> tuple:
    count = dec.uint("tuple count")
    _check_count("tuple", count)
    return tuple(dec.value(depth + 1) for _ in range(count))


def _dec_list(dec: _Decoder, depth: int) -> list:
    count = dec.uint("list count")
    _check_count("list", count)
    return [dec.value(depth + 1) for _ in range(count)]


def _dec_dict(dec: _Decoder, depth: int) -> dict:
    count = dec.uint("dict count")
    _check_count("dict", count)
    out: dict = {}
    for _ in range(count):
        key = dec.value(depth + 1)
        try:
            out[key] = dec.value(depth + 1)
        except TypeError as exc:
            raise CodecError(f"unhashable dict key: {exc}") from exc
    if len(out) != count:
        raise CodecError("duplicate dict keys")
    return out


def _dec_set(dec: _Decoder, depth: int) -> set:
    count = dec.uint("set count")
    _check_count("set", count)
    out = set()
    for _ in range(count):
        try:
            out.add(dec.value(depth + 1))
        except TypeError as exc:
            raise CodecError(f"unhashable set element: {exc}") from exc
    if len(out) != count:
        raise CodecError("duplicate set elements")
    return out


def _dec_struct(dec: _Decoder, depth: int) -> Any:
    name = dec.name()
    spec = _STRUCTS.get(name)
    if spec is None:
        raise CodecError(f"unknown struct name {name!r}")
    body_len = dec.uint("struct body length")
    _check_field_size("struct body", body_len, MAX_FIELD_BYTES)
    slot = len(dec.memo)
    dec.memo.append(_UNFILLED)
    body = dec.take(body_len, f"struct {name!r} body")
    if spec.cacheable and dec.cache is not None:
        obj = dec.cache.get_or_build(name, body, spec)
    else:
        obj = _build_struct(spec, body, None if spec.cacheable else dec)
    dec.memo[slot] = obj
    return obj


def _build_struct(
    spec: _StructSpec, body: bytes, outer: "_Decoder | None"
) -> Any:
    """Decode a struct body and run it through the registered ctor."""
    sub = _Decoder(body, None)
    if outer is not None:
        # Non-cacheable bodies share the payload's interning state.
        sub.cache = outer.cache
        sub.memo = outer.memo
        sub.names = outer.names
    fields = sub.value(0)
    if sub.pos != len(body):
        raise CodecError(
            f"{len(body) - sub.pos} trailing bytes in struct "
            f"{spec.name!r} body"
        )
    if type(fields) is not tuple:
        raise CodecError(f"struct {spec.name!r} body is not a field tuple")
    try:
        return spec.unpack(fields)
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(
            f"struct {spec.name!r} rejected by its constructor: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


def _dec_callable(dec: _Decoder, depth: int) -> Callable:
    name = dec.name()
    fn = _CALLABLES.get(name)
    if fn is None:
        raise CodecError(
            f"unknown callable name {name!r}: not registered on this "
            "side (workers load registration modules via --preload)"
        )
    dec.memo.append(fn)
    return fn


def _dec_ref(dec: _Decoder, depth: int) -> Any:
    index = dec.uint("back-reference")
    if index >= len(dec.memo):
        raise CodecError(f"back-reference {index} out of range")
    obj = dec.memo[index]
    if obj is _UNFILLED:
        raise CodecError(f"back-reference {index} into an unfinished struct")
    return obj


#: Tag dispatch table; RL006 pins this to cover every Tag member.
_DECODERS = {
    Tag.NONE: _dec_none,
    Tag.TRUE: _dec_true,
    Tag.FALSE: _dec_false,
    Tag.INT: _dec_int,
    Tag.BIGINT: _dec_bigint,
    Tag.FLOAT: _dec_float,
    Tag.STR: _dec_str,
    Tag.BYTES: _dec_bytes,
    Tag.TUPLE: _dec_tuple,
    Tag.LIST: _dec_list,
    Tag.DICT: _dec_dict,
    Tag.SET: _dec_set,
    Tag.STRUCT: _dec_struct,
    Tag.CALLABLE: _dec_callable,
    Tag.REF: _dec_ref,
}


# ----------------------------------------------------------------------
# Scheme cache
# ----------------------------------------------------------------------


class SchemeCache:
    """Bounded LRU of constructed cacheable structs, keyed by body bytes.

    The key is ``(struct name, canonical body bytes)`` — cacheable
    struct bodies are encoded with payload-independent interning
    precisely so equal parameters always produce equal bytes.
    Thread-safe.  Hit/miss/eviction totals are plain counters here;
    the planes that own a cache publish them as
    ``repro_scheme_cache_{hits,misses}_total{plane=...}`` on their own
    registries (worker daemon directly, coordinator from the ``ch``/
    ``cm`` result-frame fields), which keeps one process from double
    counting when it hosts both ends.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: dict[tuple[str, bytes], Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_build(self, name: str, body: bytes, spec: _StructSpec) -> Any:
        key = (name, bytes(body))
        with self._lock:
            obj = self._entries.get(key)
            if obj is not None:
                # dict preserves insertion order: re-insert = LRU touch.
                del self._entries[key]
                self._entries[key] = obj
                self.hits += 1
                return obj
        obj = _build_struct(spec, body, None)
        with self._lock:
            self.misses += 1
            if key not in self._entries:
                while len(self._entries) >= self.max_entries:
                    oldest = next(iter(self._entries))
                    del self._entries[oldest]
                    self.evictions += 1
                self._entries[key] = obj
        return obj

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


# ----------------------------------------------------------------------
# Payload / chunk / outcome envelopes (the cluster wire trio)
# ----------------------------------------------------------------------


def encode_cluster_payload(
    obj: Any, max_bytes: int = MAX_CLUSTER_PAYLOAD_BYTES
) -> bytes:
    """Encode one value as a typed cluster payload, enforcing the cap."""
    ensure_default_registry()
    encoder = _Encoder()
    encoder.value(obj)
    raw = bytes(encoder.out)
    check_payload_size("cluster payload", len(raw), max_bytes)
    return raw


def decode_cluster_payload(
    raw: bytes,
    max_bytes: int = MAX_CLUSTER_PAYLOAD_BYTES,
    cache: SchemeCache | None = None,
) -> Any:
    """Decode a typed cluster payload; junk raises :class:`CodecError`.

    ``cache`` (worker-side) shares decoded cacheable structs across
    payloads — see :class:`SchemeCache`.
    """
    ensure_default_registry()
    check_payload_size("cluster payload", len(raw), max_bytes)
    decoder = _Decoder(bytes(raw), cache)
    value = decoder.value()
    if decoder.pos != len(decoder.data):
        raise CodecError(
            f"{len(decoder.data) - decoder.pos} trailing bytes after "
            "cluster payload"
        )
    return value


def encode_job(fn: Callable, args: tuple, kwargs: dict) -> bytes:
    """Encode one job spec: a registered callable plus its arguments.

    ``functools.partial`` stacks are flattened first, so pre-bound jobs
    (the service plane's verification offloads) encode as their
    underlying registered callable.
    """
    import functools

    while isinstance(fn, functools.partial):
        kwargs = {**fn.keywords, **kwargs}
        args = fn.args + tuple(args)
        fn = fn.func
    ensure_default_registry()
    if _CALLABLE_NAMES.get(fn) is None:
        raise CodecError(
            f"cannot dispatch {getattr(fn, '__name__', fn)!r} to the "
            "cluster: only callables registered with "
            "repro.service.jobcodec.register_callable cross the wire"
        )
    return encode_cluster_payload((fn, tuple(args), dict(kwargs)))


def decode_job(
    raw: bytes, cache: SchemeCache | None = None
) -> tuple[Callable, tuple, dict]:
    """Decode and shape-check one job spec."""
    spec = decode_cluster_payload(raw, cache=cache)
    if not (isinstance(spec, tuple) and len(spec) == 3):
        raise CodecError("cluster job payload must be (fn, args, kwargs)")
    fn, args, kwargs = spec
    if not callable(fn):
        raise CodecError("cluster job fn is not callable")
    if not isinstance(args, tuple) or not isinstance(kwargs, dict):
        raise CodecError("cluster job args/kwargs have the wrong shape")
    if any(not isinstance(key, str) for key in kwargs):
        raise CodecError("cluster job kwargs keys must be strings")
    return fn, args, kwargs


def encode_cluster_chunk(
    job_payloads: Any, max_bytes: int = MAX_CLUSTER_PAYLOAD_BYTES
) -> bytes:
    """Frame a sequence of encoded job payloads as one chunk body.

    Jobs stay as opaque byte spans, so the coordinator regroups jobs
    into differently-sized chunks without ever re-encoding the work.
    """
    payloads = tuple(job_payloads)
    if not payloads:
        raise CodecError("cluster chunk must contain at least one job")
    _check_count("chunk", len(payloads))
    out = bytearray(encode_uint(len(payloads)))
    for payload in payloads:
        if not isinstance(payload, (bytes, bytearray)):
            raise CodecError("cluster chunk entries must be bytes")
        out += encode_uint(len(payload))
        out += payload
    raw = bytes(out)
    check_payload_size("cluster chunk", len(raw), max_bytes)
    return raw


def decode_cluster_chunk(
    raw: bytes, max_bytes: int = MAX_CLUSTER_PAYLOAD_BYTES
) -> tuple[bytes, ...]:
    """Split a chunk body back into per-job payload spans."""
    check_payload_size("cluster chunk", len(raw), max_bytes)
    data = bytes(raw)
    count, pos = read_uint(data, 0)
    _check_count("chunk", count)
    if count == 0:
        raise CodecError("cluster chunk must contain at least one job")
    payloads = []
    for _ in range(count):
        length, pos = read_uint(data, pos)
        _check_field_size("chunk entry", length, MAX_CLUSTER_PAYLOAD_BYTES)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated cluster chunk entry")
        payloads.append(data[pos:end])
        pos = end
    if pos != len(data):
        raise CodecError(
            f"{len(data) - pos} trailing bytes after cluster chunk"
        )
    return tuple(payloads)


def encode_cluster_outcomes(
    entries: Any, max_bytes: int = MAX_CLUSTER_PAYLOAD_BYTES
) -> bytes:
    """Frame per-job ``(ok, payload)`` outcomes as one result body.

    ``ok`` distinguishes an encoded result payload from an encoded
    error description; a chunk's outcome list (or any contiguous slice
    of it, for ``result_part`` streaming) travels in this envelope.
    """
    items = tuple(entries)
    _check_count("outcomes", len(items))
    out = bytearray(encode_uint(len(items)))
    for entry in items:
        if not (isinstance(entry, tuple) and len(entry) == 2):
            raise CodecError(
                "cluster outcome entries must be (ok, payload) pairs"
            )
        ok, payload = entry
        if not isinstance(ok, bool) or not isinstance(
            payload, (bytes, bytearray)
        ):
            raise CodecError(
                "cluster outcome entries must be (ok, payload) pairs"
            )
        out.append(1 if ok else 0)
        out += encode_uint(len(payload))
        out += payload
    raw = bytes(out)
    check_payload_size("cluster outcomes", len(raw), max_bytes)
    return raw


def decode_cluster_outcomes(
    raw: bytes, max_bytes: int = MAX_CLUSTER_PAYLOAD_BYTES
) -> list[tuple[bool, bytes]]:
    """Split a result body back into per-job ``(ok, payload)`` pairs."""
    check_payload_size("cluster outcomes", len(raw), max_bytes)
    data = bytes(raw)
    count, pos = read_uint(data, 0)
    _check_count("outcomes", count)
    entries = []
    for _ in range(count):
        if pos >= len(data):
            raise CodecError("truncated cluster outcome entry")
        flag = data[pos]
        if flag not in (0, 1):
            raise CodecError(f"bad outcome flag byte {flag}")
        pos += 1
        length, pos = read_uint(data, pos)
        _check_field_size("outcome entry", length, MAX_CLUSTER_PAYLOAD_BYTES)
        end = pos + length
        if end > len(data):
            raise CodecError("truncated cluster outcome entry")
        entries.append((flag == 1, data[pos:end]))
        pos = end
    if pos != len(data):
        raise CodecError(
            f"{len(data) - pos} trailing bytes after cluster outcomes"
        )
    return entries


# ----------------------------------------------------------------------
# Default registrations: every type the repo ships over the cluster wire
# ----------------------------------------------------------------------


def ensure_default_registry() -> None:
    """Register the repo's own wire types and job entry points (once).

    Central on purpose: this function is the complete, auditable list
    of what cluster bytes can become.  Third-party jobs extend it via
    :func:`register_struct` / :func:`register_callable` in a module
    both sides import (workers: ``--preload``).
    """
    global _defaults_loaded
    if _defaults_loaded:
        return
    with _registry_lock:
        if _defaults_loaded:
            return
        _defaults_loaded = True
    _register_defaults()


def _register_defaults() -> None:
    import importlib

    from repro.accounting import CostLedger
    from repro.baselines.double_check import DoubleCheckScheme
    from repro.baselines.hardening import HardenedProbeScheme
    from repro.baselines.naive_sampling import NaiveSamplingScheme
    from repro.baselines.ringer import RingerScheme
    from repro.cheating.guessing import (
        BernoulliGuess,
        UniformValueGuess,
        ZeroGuess,
    )
    from repro.cheating.strategies import (
        ColludingCheater,
        ComputedWork,
        HonestBehavior,
        MaliciousBehavior,
        SemiHonestCheater,
    )
    from repro.core.cbs import CBSScheme
    from repro.core.ni_cbs import NICBSScheme
    from repro.core.protocol import (
        CommitmentMsg,
        NICBSSubmissionMsg,
        ProofBundleMsg,
    )
    from repro.core.scheme import (
        RejectReason,
        SampleVerdict,
        SchemeRunResult,
        VerificationOutcome,
    )
    from repro.engine import jobs as _jobs
    from repro.merkle import tree as _tree
    from repro.merkle.tree import LeafEncoding
    from repro.service import verification_jobs as _verify
    from repro.tasks.domain import ExplicitDomain, RangeDomain
    from repro.tasks.function import GuessableFunction
    from repro.tasks.result import TaskAssignment
    from repro.tasks.screener import (
        MatchScreener,
        ReportAllScreener,
        ThresholdScreener,
        TopKScreener,
    )
    from repro.tasks.workloads import (
        FactoringTask,
        MersenneCheck,
        MoleculeScreening,
        MonteCarloEstimate,
        OptimizationSearch,
        PasswordSearch,
        SignalSearch,
    )

    # --- domains and task plumbing ---------------------------------
    register_struct(
        "range_domain",
        RangeDomain,
        lambda d: (d.start, d.stop),
        lambda f: RangeDomain(*f),
    )
    register_struct(
        "explicit_domain",
        ExplicitDomain,
        lambda d: (list(d),),
        lambda f: ExplicitDomain(f[0]),
    )
    register_struct(
        "task_assignment",
        TaskAssignment,
        lambda a: (a.task_id, a.domain, a.function, a.screener),
        lambda f: TaskAssignment(
            task_id=f[0], domain=f[1], function=f[2], screener=f[3]
        ),
    )

    # --- workloads --------------------------------------------------
    register_struct(
        "password_search",
        PasswordSearch,
        lambda w: (w.salt, w.digest_bytes, w.cost),
        lambda f: PasswordSearch(
            salt=f[0], digest_bytes=f[1], cost=f[2]
        ),
    )
    register_struct(
        "molecule_screening",
        MoleculeScreening,
        lambda w: (w.library_seed, w.resolution, w.cost),
        lambda f: MoleculeScreening(
            library_seed=f[0], resolution=f[1], cost=f[2]
        ),
    )
    register_struct(
        "signal_search",
        SignalSearch,
        lambda w: (w.sky_seed, w.threshold, w.cost),
        lambda f: SignalSearch(sky_seed=f[0], threshold=f[1], cost=f[2]),
    )
    register_struct(
        "mersenne_check",
        MersenneCheck,
        lambda w: (w.cost,),
        lambda f: MersenneCheck(cost=f[0]),
    )
    register_struct(
        "monte_carlo_estimate",
        MonteCarloEstimate,
        lambda w: (w.n_samples, w.cost),
        lambda f: MonteCarloEstimate(n_samples=f[0], cost=f[1]),
    )
    register_struct(
        "factoring_task",
        FactoringTask,
        lambda w: (w.bits, w.cost, w.verify_cost, w.seed),
        lambda f: FactoringTask(
            bits=f[0], cost=f[1], verify_cost=f[2], seed=f[3]
        ),
    )
    register_struct(
        "optimization_search",
        OptimizationSearch,
        lambda w: (
            w.landscape_seed,
            len(w.wells),
            w.resolution,
            w.grid_side,
            w.cost,
        ),
        lambda f: OptimizationSearch(
            landscape_seed=f[0],
            n_wells=f[1],
            resolution=f[2],
            grid_side=f[3],
            cost=f[4],
        ),
    )
    register_struct(
        "guessable_function",
        GuessableFunction,
        lambda w: (w.inner, w.guess_success_probability),
        lambda f: GuessableFunction(f[0], f[1]),
    )

    # --- screeners --------------------------------------------------
    register_struct(
        "match_screener",
        MatchScreener,
        lambda s: (s.target,),
        lambda f: MatchScreener(f[0]),
    )
    register_struct(
        "threshold_screener",
        ThresholdScreener,
        lambda s: (s.threshold, s.direction),
        lambda f: ThresholdScreener(f[0], direction=f[1]),
    )

    def _pack_topk(s: TopKScreener) -> tuple:
        # Running top-k state rides along so a mid-population handoff
        # resumes exactly where a single-process run would be.
        return (s.k, [tuple(entry) for entry in s._heap])

    def _unpack_topk(f: tuple) -> TopKScreener:
        screener = TopKScreener(f[0])
        screener._heap = [tuple(entry) for entry in f[1]]
        return screener

    register_struct("topk_screener", TopKScreener, _pack_topk, _unpack_topk)
    register_struct(
        "report_all_screener",
        ReportAllScreener,
        lambda s: (),
        lambda f: ReportAllScreener(),
    )

    # --- guess models and behaviours --------------------------------
    register_struct(
        "zero_guess", ZeroGuess, lambda g: (), lambda f: ZeroGuess()
    )
    register_struct(
        "bernoulli_guess",
        BernoulliGuess,
        lambda g: (g.q,),
        lambda f: BernoulliGuess(f[0]),
    )
    register_struct(
        "uniform_value_guess",
        UniformValueGuess,
        lambda g: (list(g.alphabet),),
        lambda f: UniformValueGuess(f[0]),
    )
    register_struct(
        "honest_behavior",
        HonestBehavior,
        lambda b: (),
        lambda f: HonestBehavior(),
    )
    register_struct(
        "semi_honest_cheater",
        SemiHonestCheater,
        lambda b: (b.honesty_ratio, b.guesser, b.selection),
        lambda f: SemiHonestCheater(f[0], guesser=f[1], selection=f[2]),
    )
    register_struct(
        "colluding_cheater",
        ColludingCheater,
        lambda b: (b.honesty_ratio, b.cartel_key, b.guesser),
        lambda f: ColludingCheater(f[0], cartel_key=f[1], guesser=f[2]),
    )
    register_struct(
        "malicious_behavior",
        MaliciousBehavior,
        lambda b: (b.corruption_rate,),
        lambda f: MaliciousBehavior(corruption_rate=f[0]),
    )

    # --- verification schemes (cacheable: stateless across runs) ----
    register_struct(
        "cbs_scheme",
        CBSScheme,
        lambda s: (
            s.n_samples,
            s.hash_name,
            s.leaf_encoding.value,
            s.subtree_height,
            s.with_replacement,
            s.include_reports,
            s.stop_on_first_failure,
            s.batch_proofs,
        ),
        lambda f: CBSScheme(
            n_samples=f[0],
            hash_name=f[1],
            leaf_encoding=LeafEncoding(f[2]),
            subtree_height=f[3],
            with_replacement=f[4],
            include_reports=f[5],
            stop_on_first_failure=f[6],
            batch_proofs=f[7],
        ),
        cacheable=True,
    )
    register_struct(
        "nicbs_scheme",
        NICBSScheme,
        lambda s: (
            s.n_samples,
            s.sample_hash_name,
            s.hash_name,
            s.leaf_encoding.value,
            s.subtree_height,
            s.stop_on_first_failure,
        ),
        lambda f: NICBSScheme(
            n_samples=f[0],
            sample_hash_name=f[1],
            hash_name=f[2],
            leaf_encoding=LeafEncoding(f[3]),
            subtree_height=f[4],
            stop_on_first_failure=f[5],
        ),
        cacheable=True,
    )
    register_struct(
        "naive_sampling_scheme",
        NaiveSamplingScheme,
        lambda s: (s.n_samples, s.with_replacement),
        lambda f: NaiveSamplingScheme(f[0], with_replacement=f[1]),
        cacheable=True,
    )
    register_struct(
        "double_check_scheme",
        DoubleCheckScheme,
        lambda s: (s.replication, list(s.replica_behaviors)),
        lambda f: DoubleCheckScheme(
            replication=f[0], replica_behaviors=f[1]
        ),
        cacheable=True,
    )
    register_struct(
        "ringer_scheme",
        RingerScheme,
        lambda s: (s.n_ringers, s.require_all),
        lambda f: RingerScheme(f[0], require_all=f[1]),
        cacheable=True,
    )
    register_struct(
        "hardened_probe_scheme",
        HardenedProbeScheme,
        lambda s: (s.n_probes,),
        lambda f: HardenedProbeScheme(f[0]),
        cacheable=True,
    )

    # --- engine jobs -------------------------------------------------
    register_struct(
        "scheme_job",
        _jobs.SchemeJob,
        lambda j: (j.assignment, j.behavior, j.seed),
        lambda f: _jobs.SchemeJob(
            assignment=f[0], behavior=f[1], seed=f[2]
        ),
    )
    register_struct(
        "scheme_batch",
        _jobs.SchemeBatch,
        lambda b: (b.scheme, b.jobs),
        lambda f: _jobs.SchemeBatch(scheme=f[0], jobs=f[1]),
    )

    # --- outcome records (the result plane) -------------------------
    register_struct(
        "reject_reason",
        RejectReason,
        lambda r: (r.value,),
        lambda f: RejectReason(f[0]),
    )
    register_struct(
        "sample_verdict",
        SampleVerdict,
        lambda v: (v.index, v.accepted, v.reason),
        lambda f: SampleVerdict(index=f[0], accepted=f[1], reason=f[2]),
    )
    register_struct(
        "verification_outcome",
        VerificationOutcome,
        lambda o: (o.task_id, o.accepted, o.verdicts, o.reason),
        lambda f: VerificationOutcome(
            task_id=f[0], accepted=f[1], verdicts=f[2], reason=f[3]
        ),
    )

    def _pack_ledger(ledger: CostLedger) -> tuple:
        return (
            ledger.evaluation_cost,
            ledger.evaluations,
            ledger.verification_cost,
            ledger.verifications,
            ledger.hash_cost,
            ledger.hashes,
            ledger.bytes_sent,
            ledger.bytes_received,
            ledger.messages_sent,
            ledger.messages_received,
            ledger.storage_digests,
            ledger.screening_cost,
            dict(ledger.counters),
        )

    def _unpack_ledger(f: tuple) -> CostLedger:
        return CostLedger(
            evaluation_cost=f[0],
            evaluations=f[1],
            verification_cost=f[2],
            verifications=f[3],
            hash_cost=f[4],
            hashes=f[5],
            bytes_sent=f[6],
            bytes_received=f[7],
            messages_sent=f[8],
            messages_received=f[9],
            storage_digests=f[10],
            screening_cost=f[11],
            counters=f[12],
        )

    register_struct("cost_ledger", CostLedger, _pack_ledger, _unpack_ledger)
    register_struct(
        "computed_work",
        ComputedWork,
        lambda w: (w.leaf_payloads, w.honest_indices),
        lambda f: ComputedWork(leaf_payloads=f[0], honest_indices=f[1]),
    )
    register_struct(
        "scheme_run_result",
        SchemeRunResult,
        lambda r: (
            r.outcome,
            r.participant_ledger,
            r.supervisor_ledger,
            r.work,
            r.other_ledger,
        ),
        lambda f: SchemeRunResult(
            outcome=f[0],
            participant_ledger=f[1],
            supervisor_ledger=f[2],
            work=f[3],
            other_ledger=f[4],
        ),
    )

    # --- protocol messages (reuse their canonical binary codecs) ----
    for msg_name, msg_cls in (
        ("commitment_msg", CommitmentMsg),
        ("proof_bundle_msg", ProofBundleMsg),
        ("nicbs_submission_msg", NICBSSubmissionMsg),
    ):
        register_struct(
            msg_name,
            msg_cls,
            lambda m: (m.encode(),),
            lambda f, cls=msg_cls: cls.decode(f[0]),
        )

    # --- job entry points (everything the repo itself maps) ---------
    # Names are short on purpose: each payload spells each name once,
    # so name length is fixed per-job overhead on the wire.
    register_callable("engine.execute_batch", _jobs.execute_batch)
    register_callable("merkle.hash_leaf_chunk", _tree.hash_leaf_chunk)
    register_callable("merkle.prove_leaf_chunk", _tree.prove_leaf_chunk)
    # `repro.analysis` re-exports a `sweep` *function*, shadowing the
    # submodule attribute — resolve the module itself.
    _sweep = importlib.import_module("repro.analysis.sweep")
    register_callable("sweep.eval_point", _sweep._eval_point)
    register_callable("service.verify_cbs", _verify.verify_cbs_job)
    register_callable("service.verify_nicbs", _verify.verify_nicbs_job)
