"""Participant load generator for the supervisor service.

Drives ``n_participants`` concurrent protocol rounds — honest and
cheating behaviours cycled exactly like
:class:`~repro.grid.simulation.SimulationConfig` — against a
supervisor reachable over TCP or the in-process transport, and
reports both the paper's product (a
:class:`~repro.grid.report.DetectionReport`: who was caught) and the
system's product (:class:`LoadgenStats`: submissions/sec, p50/p99
latency).

Participant ``i`` always claims slot ``i``, so a loadgen run at a
fixed server seed is deterministic and comparable, outcome for
outcome, with the equivalent synchronous
:class:`~repro.grid.simulation.GridSimulation`.
"""

from __future__ import annotations

import asyncio
import math
import time
from concurrent.futures import ThreadPoolExecutor as _FuturesThreadPool
from dataclasses import dataclass
from typing import Sequence

from repro.accounting import CostLedger
from repro.cheating.strategies import Behavior
from repro.exceptions import ProtocolError, ReproError
from repro.grid.report import DetectionReport, ParticipantReport
from repro.net.transport import SecurityConfig
from repro.service.client import ParticipantRun, ServiceClient
from repro.service.server import ServiceConfig, SupervisorServer


@dataclass
class LoadgenStats:
    """Throughput and latency over one load-generation run."""

    n_participants: int
    n_completed: int
    n_errors: int
    elapsed_s: float
    submissions_per_s: float
    p50_latency_s: float
    p99_latency_s: float

    def summary(self) -> dict:
        """Flat row for tables / JSON."""
        return {
            "participants": self.n_participants,
            "completed": self.n_completed,
            "errors": self.n_errors,
            "elapsed_s": round(self.elapsed_s, 4),
            "submissions_per_s": round(self.submissions_per_s, 1),
            "p50_latency_ms": round(self.p50_latency_s * 1e3, 2),
            "p99_latency_ms": round(self.p99_latency_s * 1e3, 2),
        }


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of a non-empty list.

    Returns the smallest sample whose empirical CDF reaches ``q`` —
    the 1-indexed order statistic ``ceil(q * N)`` — so the result is
    always an actual sample, ``q=1.0`` is the maximum even for
    single-sample lists, and no interpolation ever manufactures a
    latency nobody measured.  (The previous ``round``-based rank
    drifted one order statistic low near the top of the distribution
    — banker's rounding pulled p99 of 64 samples to index 62.)
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    # min() guards float overshoot (e.g. 0.99 * N landing on N + eps).
    rank = min(math.ceil(q * len(ordered)) - 1, len(ordered) - 1)
    return ordered[rank]


async def run_loadgen(
    n_participants: int,
    behaviors: Sequence[Behavior],
    *,
    host: str | None = None,
    port: int | None = None,
    server: SupervisorServer | None = None,
    security: SecurityConfig | None = None,
    connect_retry_s: float = 0.0,
    concurrency: int = 32,
    compute_workers: int | None = 4,
    max_errors: int | None = None,
) -> tuple[DetectionReport, LoadgenStats]:
    """Drive ``n_participants`` rounds; aggregate report and stats.

    Exactly one transport must be given: ``host``/``port`` for a TCP
    supervisor, or ``server`` for in-process streams.  Participant
    compute (tree building) runs on a small thread pool
    (``compute_workers``; ``None`` computes inline) so the event loop
    multiplexes connections instead of serializing on hashing.

    A participant whose round fails with a protocol or transport error
    is counted in ``stats.n_errors`` and *omitted* from the report —
    there is no verdict and no ground truth for it, so a fabricated
    row would corrupt the detection/false-alarm rates.  ``max_errors``
    (default: allow all) aborts the run early when crossed.

    ``security`` carries the supervisor's TLS pin and shared secret
    (every participant connection authenticates before its first
    frame); ``connect_retry_s`` is the shared repro.net connect
    retry/backoff budget, so a loadgen racing a slow-starting server
    keeps dialling instead of failing hard.
    """
    if (host is None) == (server is None):
        raise ProtocolError("pass exactly one of host/port or server")
    if host is not None and port is None:
        raise ProtocolError("TCP loadgen needs both host and port")
    if n_participants < 1:
        raise ProtocolError(
            f"n_participants must be >= 1, got {n_participants}"
        )
    if not behaviors:
        raise ProtocolError("behaviors must be non-empty")

    semaphore = asyncio.Semaphore(max(1, concurrency))
    pool = (
        _FuturesThreadPool(
            max_workers=compute_workers, thread_name_prefix="repro-loadgen"
        )
        if compute_workers
        else None
    )
    errors = 0

    async def one_round(index: int) -> ParticipantRun | None:
        nonlocal errors
        behavior = behaviors[index % len(behaviors)]
        async with semaphore:
            if max_errors is not None and errors > max_errors:
                return None
            try:
                if server is not None:
                    reader, writer = server.connect_memory()
                    client = ServiceClient(reader, writer)
                    if security is not None:
                        await client.authenticate(security)
                else:
                    client = await ServiceClient.open_tcp(
                        host,
                        port,
                        security=security,
                        connect_retry_s=connect_retry_s,
                    )
                try:
                    return await client.run_participant(
                        behavior, participant=index, compute_pool=pool
                    )
                finally:
                    await client.close()
            except (ReproError, ConnectionError, OSError):
                errors += 1
                return None

    start = time.perf_counter()
    try:
        runs = await asyncio.gather(
            *(one_round(i) for i in range(n_participants))
        )
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    elapsed = time.perf_counter() - start

    completed = [run for run in runs if run is not None]
    scheme_label = (
        f"service:{completed[0].protocol}(m={completed[0].n_samples})"
        if completed
        else "service"
    )
    report = DetectionReport(scheme=scheme_label)
    for run in completed:
        report.participants.append(
            ParticipantReport(
                participant=f"participant-{run.participant}",
                behavior=run.behavior,
                honesty_ratio=run.honesty_ratio,
                accepted=run.accepted,
                reason=run.reason,
                participant_ledger=run.ledger,
                supervisor_ledger_delta=CostLedger(),
            )
        )

    latencies = [run.latency_s for run in completed]
    stats = LoadgenStats(
        n_participants=n_participants,
        n_completed=len(completed),
        n_errors=errors,
        elapsed_s=elapsed,
        submissions_per_s=len(completed) / elapsed if elapsed > 0 else 0.0,
        p50_latency_s=percentile(latencies, 0.50) if latencies else 0.0,
        p99_latency_s=percentile(latencies, 0.99) if latencies else 0.0,
    )
    return report, stats


async def run_service_loadgen(
    config: ServiceConfig,
    behaviors: Sequence[Behavior],
    *,
    transport: str = "memory",
    engine: str = "threads",
    workers: int | None = None,
    engine_options: dict | None = None,
    security: SecurityConfig | None = None,
    concurrency: int = 32,
    compute_workers: int | None = 4,
) -> tuple[DetectionReport, LoadgenStats, SupervisorServer]:
    """Self-contained run: spin up a supervisor, drive it, tear down.

    ``transport`` is ``"memory"`` (in-process streams) or ``"tcp"``
    (a real loopback listener).  ``engine_options`` forward to the
    server's execution backend (the cluster tuning knobs).
    ``security`` applies to both ends: the server gates its socket
    with it, the generated participants authenticate with it.  The
    stopped server is returned so callers can inspect
    ``server.outcomes`` / ``server.stats`` — e.g. the parity tests
    comparing service verdicts against the synchronous simulator.
    """
    if transport not in ("memory", "tcp"):
        raise ProtocolError(f"unknown transport {transport!r}")
    server = SupervisorServer(
        config,
        engine=engine,
        workers=workers,
        engine_options=engine_options,
        security=security,
    )
    try:
        if transport == "tcp":
            host, port = await server.start()
            report, stats = await run_loadgen(
                config.n_participants,
                behaviors,
                host=host,
                port=port,
                security=security,
                concurrency=concurrency,
                compute_workers=compute_workers,
            )
        else:
            report, stats = await run_loadgen(
                config.n_participants,
                behaviors,
                server=server,
                security=security,
                concurrency=concurrency,
                compute_workers=compute_workers,
            )
    finally:
        await server.stop()
    return report, stats, server


def run_service_loadgen_sync(
    config: ServiceConfig,
    behaviors: Sequence[Behavior],
    **kwargs,
) -> tuple[DetectionReport, LoadgenStats, SupervisorServer]:
    """Blocking wrapper over :func:`run_service_loadgen` (CLI, benches)."""
    return asyncio.run(run_service_loadgen(config, behaviors, **kwargs))
