"""Async participant client for the supervisor service.

One :class:`ServiceClient` drives one connection through a full
protocol round: request a slot, rebuild the
:class:`~repro.tasks.result.TaskAssignment` from the assign frame's
service envelope (domain bounds + the shared workload catalogue), run
the behaviour-driven participant protocol objects from
:mod:`repro.core`, and return the verdict with ground truth attached.

Because the participant side reuses :class:`CBSParticipant` /
:class:`NICBSParticipant` with the same salt rule as the scheme layer
(``salt = seed.to_bytes(8, "big")``), a client at seed ``s`` produces
byte-identical commitments and proofs to ``CBSScheme.run(...,
seed=s)`` — which is what makes service runs comparable, outcome for
outcome, with synchronous simulations.
"""

from __future__ import annotations

import asyncio
import functools
import time
from dataclasses import dataclass

from repro.accounting import CostLedger
from repro.cheating.strategies import Behavior
from repro.core.cbs import CBSParticipant
from repro.core.ni_cbs import NICBSParticipant
from repro.core.scheme import RejectReason
from repro.exceptions import ProtocolError
from repro.merkle.hashing import get_hash
from repro.merkle.tree import LeafEncoding
from repro.net.transport import SecurityConfig, open_connection
from repro.obs.logging import get_logger, log_event
from repro.obs.trace import (
    bind_trace,
    current_span,
    current_trace,
    new_span_id,
)
from repro.service.codec import (
    MAX_FRAME_BYTES,
    ChallengeFrame,
    CommitmentFrame,
    ErrorFrame,
    Frame,
    ProofsFrame,
    StatsReply,
    StatsRequest,
    SubmissionFrame,
    TaskAssign,
    TaskRequest,
    TraceGetRequest,
    TraceReply,
    VerdictFrame,
    read_frame,
    resolve_workload,
    write_frame,
)
from repro.tasks.domain import RangeDomain
from repro.tasks.result import TaskAssignment

_log = get_logger("client")


@dataclass
class ParticipantRun:
    """One completed protocol round, verdict plus ground truth."""

    participant: int
    task_id: str
    behavior: str
    honesty_ratio: float
    accepted: bool
    reason: RejectReason
    protocol: str
    n_samples: int
    latency_s: float
    ledger: CostLedger


def _reason_from_wire(reason: str) -> RejectReason:
    if not reason:
        return RejectReason.OK
    try:
        return RejectReason(reason)
    except ValueError:
        return RejectReason.PROTOCOL_VIOLATION


class ServiceClient:
    """One participant connection to the supervisor service."""

    def __init__(self, reader, writer, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame

    @classmethod
    async def open_tcp(
        cls,
        host: str,
        port: int,
        max_frame: int = MAX_FRAME_BYTES,
        *,
        security: SecurityConfig | None = None,
        connect_retry_s: float = 0.0,
    ) -> "ServiceClient":
        """Dial a supervisor (shared repro.net retry/backoff helper).

        ``connect_retry_s`` keeps re-dialling a supervisor that has not
        bound its port yet — a participant racing a slow-starting
        server is normal, not an error.  ``security`` carries the
        optional TLS pin and shared secret; when a secret is set the
        client authenticates before the first protocol frame.
        """
        reader, writer = await open_connection(
            host,
            port,
            ssl_context=(
                security.client_ssl_context() if security is not None else None
            ),
            connect_retry_s=connect_retry_s,
        )
        client = cls(reader, writer, max_frame=max_frame)
        if security is not None:
            await client.authenticate(security)
        return client

    async def authenticate(self, security: SecurityConfig) -> None:
        """Run the client side of the HMAC handshake (no-op without a
        secret).  Exposed separately so in-process (memory-duplex)
        connections can authenticate too."""
        try:
            await security.authenticate_outbound(self._reader, self._writer)
        except BaseException:
            await self.close()
            raise

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # peer already gone
            pass

    # ------------------------------------------------------------------

    async def _send(self, frame: Frame) -> None:
        await write_frame(self._writer, frame, max_frame=self._max_frame)

    async def _recv(self, expected: type) -> Frame:
        frame = await read_frame(self._reader, max_frame=self._max_frame)
        if frame is None:
            raise ProtocolError("supervisor closed the connection")
        if isinstance(frame, ErrorFrame):
            raise ProtocolError(f"supervisor error: {frame.message}")
        if not isinstance(frame, expected):
            raise ProtocolError(
                f"expected {expected.__name__}, got {type(frame).__name__}"
            )
        return frame

    # ------------------------------------------------------------------

    async def stats(self) -> dict:
        """Fetch the supervisor's live metrics snapshot."""
        await self._send(StatsRequest())
        reply = await self._recv(StatsReply)
        assert isinstance(reply, StatsReply)
        return reply.stats

    async def trace(self, trace_id: str) -> list[dict]:
        """Fetch one distributed trace's wire spans from the supervisor.

        Returns the supervisor's assembled span list for ``trace_id``
        (each a validated wire dict — feed them to
        :meth:`repro.obs.Span.from_wire` / ``render_waterfall``).
        Empty list when the id is unknown or its spans aged out of the
        bounded buffer.
        """
        await self._send(TraceGetRequest(trace_id=trace_id))
        reply = await self._recv(TraceReply)
        assert isinstance(reply, TraceReply)
        return list(reply.spans)

    async def request_task(self, participant: int | None = None) -> TaskAssign:
        """Ask for a slot; returns the supervisor's assign frame.

        When a trace is bound in the calling context, its id plus a
        fresh per-round span id ride the request, so supervisor-side
        records for this task correlate with the client's.
        """
        trace_id = current_trace()
        span_id = (
            (current_span() or new_span_id()) if trace_id is not None else None
        )
        await self._send(
            TaskRequest(
                participant=participant, trace_id=trace_id, span_id=span_id
            )
        )
        assign = await self._recv(TaskAssign)
        n = assign.domain_stop - assign.domain_start
        if n != assign.assign.n_inputs:
            raise ProtocolError(
                f"assign frame domain spans {n} inputs, "
                f"AssignMsg says {assign.assign.n_inputs}"
            )
        return assign

    @staticmethod
    def build_assignment(assign: TaskAssign) -> TaskAssignment:
        """Reconstruct the task from the wire envelope (shared kernel)."""
        return TaskAssignment(
            task_id=assign.assign.task_id,
            domain=RangeDomain(assign.domain_start, assign.domain_stop),
            function=resolve_workload(assign.assign.workload),
        )

    async def run_participant(
        self,
        behavior: Behavior,
        participant: int | None = None,
        compute_pool=None,
    ) -> ParticipantRun:
        """Run one full protocol round under ``behavior``.

        ``compute_pool`` is an optional ``concurrent.futures`` pool
        for the CPU-heavy participant side (evaluating ``f``, building
        the Merkle tree) so a load generator's event loop stays
        responsive; ``None`` computes inline.

        When the caller has a trace bound, the whole round runs under
        a fresh span so client records and the supervisor's verdict
        record share ids.
        """
        trace_id = current_trace()
        span_id = new_span_id() if trace_id is not None else None
        with bind_trace(trace_id, span_id):
            return await self._run_participant(
                behavior, participant, compute_pool
            )

    async def _run_participant(
        self,
        behavior: Behavior,
        participant: int | None = None,
        compute_pool=None,
    ) -> ParticipantRun:
        start = time.perf_counter()
        assign = await self.request_task(participant)
        assignment = self.build_assignment(assign)
        ledger = CostLedger()
        hash_fn = get_hash(assign.hash_name)
        leaf_encoding = LeafEncoding(assign.leaf_encoding)
        salt = assign.seed.to_bytes(8, "big")

        if assign.protocol == "cbs":
            session = CBSParticipant(
                assignment,
                behavior,
                hash_fn=hash_fn,
                leaf_encoding=leaf_encoding,
                ledger=ledger,
                salt=salt,
            )
            commitment = await self._compute(
                compute_pool, session.compute_and_commit
            )
            await self._send(CommitmentFrame(msg=commitment))
            challenge = await self._recv(ChallengeFrame)
            bundle = await self._compute(
                compute_pool, session.prove, challenge.msg
            )
            await self._send(ProofsFrame(msg=bundle))
        elif assign.protocol == "ni-cbs":
            session = NICBSParticipant(
                assignment,
                behavior,
                n_samples=assign.n_samples,
                sample_hash=get_hash(assign.sample_hash_name),
                hash_fn=hash_fn,
                leaf_encoding=leaf_encoding,
                ledger=ledger,
                salt=salt,
            )
            submission = await self._compute(
                compute_pool, session.compute_and_submit
            )
            await self._send(SubmissionFrame(msg=submission))
        else:
            raise ProtocolError(f"unknown protocol {assign.protocol!r}")

        verdict = await self._recv(VerdictFrame)
        if verdict.msg.task_id != assignment.task_id:
            raise ProtocolError(
                f"verdict for task {verdict.msg.task_id!r}, "
                f"expected {assignment.task_id!r}"
            )
        assert session.work is not None
        log_event(
            _log,
            "round_complete",
            task_id=assignment.task_id,
            participant=assign.participant,
            accepted=verdict.msg.accepted,
        )
        return ParticipantRun(
            participant=assign.participant,
            task_id=assignment.task_id,
            behavior=behavior.name,
            honesty_ratio=session.work.honesty_ratio,
            accepted=verdict.msg.accepted,
            reason=_reason_from_wire(verdict.msg.reason),
            protocol=assign.protocol,
            n_samples=assign.n_samples,
            latency_s=time.perf_counter() - start,
            ledger=ledger,
        )

    @staticmethod
    async def _compute(pool, fn, *args):
        if pool is None:
            return fn(*args)
        return await asyncio.get_running_loop().run_in_executor(
            pool, functools.partial(fn, *args)
        )
