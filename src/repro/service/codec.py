"""Length-prefixed JSON frame codec for the grid service wire protocol.

The asyncio service (:mod:`repro.service.server`) speaks framed JSON
over a byte stream: every frame is a 4-byte big-endian payload length
followed by a UTF-8 JSON object carrying a ``"t"`` type tag.  The
length-prefix mechanics and the size-cap constants live in
:mod:`repro.net.framing` (the transport layer both planes share —
this module owns only the message vocabulary on top).  Protocol
messages — commitments, challenges, proof bundles, one-shot NI-CBS
submissions, verdicts — are *not* re-modelled in JSON: their canonical
binary encodings from :mod:`repro.core.protocol` (which in turn reuse
:mod:`repro.merkle.serialize` for authentication paths) ride inside
the envelope base64-encoded, so the wire bytes the E3 accounting
measures are exactly the bytes a remote participant ships.

Frame vocabulary (client ↔ supervisor):

* ``task_request`` → ``assign`` — a participant asks for (or names)
  its slot; the supervisor answers with the :class:`AssignMsg` plus
  the service envelope (domain bounds, scheme parameters, seed) the
  client needs to reconstruct the :class:`TaskAssignment` locally.
* ``commitment`` → ``challenge`` → ``proofs`` → ``verdict`` — the
  interactive CBS round of §3.1.
* ``submission`` → ``verdict`` — the one-shot NI-CBS flow of §4.
* ``error`` — the supervisor's terminal complaint before it closes a
  misbehaving connection.

Cluster vocabulary (worker ↔ coordinator, the distributed execution
engine of :mod:`repro.engine.cluster`):

* ``hello`` — a worker registers with the coordinator, declaring its
  id, execution capacity and wire version;
* ``heartbeat`` — periodic worker liveness beacon;
* ``job`` / ``result`` — one engine chunk out, one chunk's results
  back.  A job payload is a *chunk*: an ordered tuple of typed job
  specs (:func:`encode_cluster_chunk`), which is what lets the
  coordinator resize chunks per worker without a new frame type.  A
  result payload is the matching ordered list of per-job
  ``(ok, payload)`` outcomes (:func:`encode_cluster_outcomes`).
  Payloads are *data, never code*: the typed binary job codec
  (:mod:`repro.service.jobcodec`, wire v5) encodes a job as a
  registered callable name plus tagged, size-capped values — no
  pickle anywhere on the wire — and rides base64 inside the envelope
  with an explicit version tag and a hard size cap.  Corrupted,
  truncated, oversized, wrong-version or out-of-vocabulary payloads
  raise :class:`~repro.exceptions.CodecError`, never crash a worker,
  and can never execute attacker-chosen code.
* ``result_part`` / ``result_end`` — a worker streaming one giant
  chunk's outcomes in bounded sub-frames instead of a single huge
  ``result`` envelope: ``result_part`` carries a contiguous slice of
  the outcome list (sequenced, size-capped), ``result_end`` closes the
  stream with the expected part count so the coordinator can verify it
  reassembled the whole chunk — and requeue cleanly if the worker died
  mid-stream.
* ``stats_request`` → ``stats`` — an authenticated client pulls the
  registry snapshot; ``trace_get`` → ``trace`` — it pulls one
  assembled trace (the spans of a distributed waterfall) by id.
* ``bye`` — either side announces an orderly departure.

Hostile bytes are a fact of life for a listening socket: every decode
path raises :class:`~repro.exceptions.ProtocolError` (frame layer) or
:class:`~repro.exceptions.CodecError` (inner binary message / typed
job envelope) — both :class:`~repro.exceptions.ReproError` — and never
an uncaught ``KeyError``/``UnicodeDecodeError``/``binascii.Error``.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass
from typing import Callable, Union

from repro.core.protocol import (
    AssignMsg,
    CommitmentMsg,
    NICBSSubmissionMsg,
    ProofBundleMsg,
    SampleChallengeMsg,
    VerdictMsg,
)
from repro.exceptions import CodecError, ProtocolError
from repro.obs.metrics import SIZE_BUCKETS, default_registry
from repro.obs.spans import validate_wire_spans
from repro.obs.trace import MAX_TRACE_ID_LEN
from repro.net.framing import (
    DEFAULT_STREAM_THRESHOLD_BYTES as DEFAULT_STREAM_THRESHOLD_BYTES,
    FRAME_HEADER_BYTES as FRAME_HEADER_BYTES,
    MAX_CLUSTER_FRAME_BYTES as MAX_CLUSTER_FRAME_BYTES,
    MAX_CLUSTER_PAYLOAD_BYTES as MAX_CLUSTER_PAYLOAD_BYTES,
    MAX_FRAME_BYTES as MAX_FRAME_BYTES,
    check_payload_size,
    frame_buffer,
    read_frame_bytes,
    split_frame_buffer,
    write_frame_bytes,
)
# The cluster job envelope is the typed binary codec of
# repro.service.jobcodec (value vocabulary, registries, size caps, the
# worker scheme cache); re-exported here because this module is the
# wire-level import home for both planes.
from repro.service.jobcodec import (
    decode_cluster_chunk as decode_cluster_chunk,
    decode_cluster_outcomes as decode_cluster_outcomes,
    decode_cluster_payload as decode_cluster_payload,
    encode_cluster_chunk as encode_cluster_chunk,
    encode_cluster_outcomes as encode_cluster_outcomes,
    encode_cluster_payload as encode_cluster_payload,
)
from repro.tasks.function import TaskFunction
from repro.tasks.workloads import (
    FactoringTask,
    MersenneCheck,
    MoleculeScreening,
    MonteCarloEstimate,
    OptimizationSearch,
    PasswordSearch,
    SignalSearch,
)

# Framing geometry and size caps live in repro.net.framing (the shared
# transport layer); re-exported here so wire-level call sites keep one
# import home.  FRAME_HEADER_BYTES / MAX_FRAME_BYTES /
# MAX_CLUSTER_PAYLOAD_BYTES / MAX_CLUSTER_FRAME_BYTES /
# DEFAULT_STREAM_THRESHOLD_BYTES: see that module.

#: Version tag every cluster payload carries on the wire.  A
#: coordinator and its workers must agree byte-for-byte on the job
#: format; bumping this number fences off incompatible deployments.
#: v2: ``job`` payloads became multi-job chunks and results gained the
#: ``result_part``/``result_end`` streaming frames.
#: v3: frames may carry optional ``tid``/``sid`` trace-context fields
#: (absent unless tracing is on; decoders treat them as optional, so
#: the payload format itself is unchanged).
#: v4: ``result``/``result_end`` frames may carry an optional ``sp``
#: field — the worker's completed spans for the chunk, as a bounded
#: list of validated span dicts (see :mod:`repro.obs.spans`).
#: v5: the payload format itself changed — job and result payloads are
#: the typed binary encoding of :mod:`repro.service.jobcodec` (tagged
#: terms, registered structs/callables, per-field size caps), not
#: pickle.  ``result``/``result_end`` frames may carry optional
#: ``ch``/``cm`` scheme-cache hit/miss counts.  v5 bytes are
#: meaningless to a v4 unpickler and vice versa, so there is no compat
#: window: a v4 peer is rejected at ``hello`` with a clear upgrade
#: message (see :meth:`coordinator._serve_worker`), never half-spoken
#: to.
CLUSTER_WIRE_VERSION = 5

#: Versions this codec decodes.  The typed-codec cutover is a hard
#: fence: v4 and earlier moved pickles, which v5 will not even
#: attempt to parse.
COMPAT_CLUSTER_WIRE_VERSIONS = frozenset({CLUSTER_WIRE_VERSION})


# ----------------------------------------------------------------------
# Workload catalogue
# ----------------------------------------------------------------------

#: The shared work-unit catalogue: in real grids the client software
#: embeds the kernel, so the wire only names it (AssignMsg.workload).
WORKLOADS: dict[str, Callable[[], TaskFunction]] = {
    "PasswordSearch": PasswordSearch,
    "MoleculeScreening": MoleculeScreening,
    "SignalSearch": SignalSearch,
    "MersenneCheck": MersenneCheck,
    "MonteCarloEstimate": MonteCarloEstimate,
    "OptimizationSearch": OptimizationSearch,
    "FactoringTask": FactoringTask,
}


def resolve_workload(name: str) -> TaskFunction:
    """Instantiate the named workload with its canonical parameters."""
    if name not in WORKLOADS:
        raise ProtocolError(f"unknown workload {name!r}")
    return WORKLOADS[name]()


# ----------------------------------------------------------------------
# Frame dataclasses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskRequest:
    """Client → supervisor: grant me a participant slot.

    ``participant`` pins a specific slot (the load generator does this
    so runs are reproducible); ``None`` asks for the next free one.
    ``trace_id``/``span_id`` are the optional trace context the client
    minted for this session; the supervisor attaches them to every log
    record and verdict for the task.  Old servers ignore the fields.
    """

    participant: int | None = None
    trace_id: str | None = None
    span_id: str | None = None


@dataclass(frozen=True)
class TaskAssign:
    """Supervisor → client: the assignment plus its service envelope.

    ``assign`` is the canonical :class:`AssignMsg`; the extra fields
    carry what the in-memory simulator shares implicitly — the
    subdomain bounds, scheme parameters and the per-task seed that
    makes the run reproducible on both sides.
    """

    assign: AssignMsg
    participant: int
    domain_start: int
    domain_stop: int
    protocol: str
    n_samples: int
    hash_name: str
    sample_hash_name: str
    leaf_encoding: str
    seed: int


@dataclass(frozen=True)
class CommitmentFrame:
    msg: CommitmentMsg


@dataclass(frozen=True)
class ChallengeFrame:
    msg: SampleChallengeMsg


@dataclass(frozen=True)
class ProofsFrame:
    msg: ProofBundleMsg


@dataclass(frozen=True)
class SubmissionFrame:
    msg: NICBSSubmissionMsg


@dataclass(frozen=True)
class VerdictFrame:
    msg: VerdictMsg


@dataclass(frozen=True)
class ErrorFrame:
    message: str


@dataclass(frozen=True)
class WorkerHello:
    """Worker → coordinator: register with id, capacity and version.

    ``version`` is decoded *leniently* (any non-negative int), unlike
    every payload-bearing cluster frame: the coordinator must be able
    to read an incompatible peer's hello so it can answer with a clear
    ``bye`` naming the required version, instead of dying in the
    decoder where the peer learns nothing.
    """

    worker_id: str
    capacity: int
    version: int = CLUSTER_WIRE_VERSION


@dataclass(frozen=True)
class HeartbeatFrame:
    """Worker → coordinator: periodic liveness beacon."""

    worker_id: str


@dataclass(frozen=True)
class JobFrame:
    """Coordinator → worker: one chunk of work (typed job payloads).

    ``trace_id``/``span_id`` are the optional trace context of the
    population this chunk belongs to (trace) and of the chunk itself
    (span); the worker binds them around execution so its log records
    line up with the coordinator's dispatch/acceptance records.
    Results carry no trace fields — the coordinator correlates them by
    ``job_id``.
    """

    job_id: int
    payload: bytes
    version: int = CLUSTER_WIRE_VERSION
    trace_id: str | None = None
    span_id: str | None = None


@dataclass(frozen=True)
class ResultFrame:
    """Worker → coordinator: one chunk's outcome.

    ``ok`` distinguishes an encoded result (``True``) from an encoded
    error description (``False``) — a job that raises must come back
    as data, never crash the worker.

    ``spans`` (wire v4, optional) carries the worker's completed
    spans for this chunk as validated wire dicts
    (:func:`repro.obs.spans.validate_wire_spans`), so the coordinator
    can assemble one distributed timeline.  Empty unless the chunk
    was traced.

    ``cache_hits``/``cache_misses`` (wire v5, optional) report the
    worker's scheme-cache traffic while executing this chunk, so the
    coordinator can aggregate fleet-wide cache effectiveness into its
    own registry without scraping every worker.
    """

    job_id: int
    ok: bool
    payload: bytes
    version: int = CLUSTER_WIRE_VERSION
    spans: tuple = ()
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class ResultPartFrame:
    """Worker → coordinator: one bounded slice of a chunk's outcomes.

    ``seq`` numbers the parts of one chunk from zero; the transport is
    ordered, so the coordinator rejects any gap as a protocol
    violation.  The payload is an :func:`encode_cluster_outcomes`
    envelope holding a contiguous run of per-job outcomes.
    """

    job_id: int
    seq: int
    payload: bytes
    version: int = CLUSTER_WIRE_VERSION


@dataclass(frozen=True)
class ResultEndFrame:
    """Worker → coordinator: closes one chunk's result stream.

    ``parts`` is the number of ``result_part`` frames the worker sent;
    a mismatch with what arrived means the stream is incomplete and
    the chunk must be requeued, never partially accepted.  ``spans``
    is the same optional wire-v4 span export as on ``result``, and
    ``cache_hits``/``cache_misses`` the same optional wire-v5
    scheme-cache counts (the streamed path closes with this frame, so
    both ride here).
    """

    job_id: int
    parts: int
    version: int = CLUSTER_WIRE_VERSION
    spans: tuple = ()
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class StatsRequest:
    """Client → supervisor/worker: send me your metrics snapshot.

    Served only on authenticated connections (when the endpoint runs
    with a shared secret, the auth handshake has already happened
    before any frame is decoded); the reply is the registry snapshot.
    """


@dataclass(frozen=True)
class StatsReply:
    """Supervisor/worker → client: one registry snapshot.

    ``stats`` is the plain-dict form of
    :meth:`repro.obs.MetricsRegistry.snapshot` — JSON all the way
    down, so it rides the frame envelope without a binary encoding.
    """

    stats: dict


@dataclass(frozen=True)
class TraceGetRequest:
    """Client → supervisor: send me one assembled trace.

    Served only on authenticated connections, like ``stats_request``.
    ``trace_id`` names the trace (the id a ``--trace`` run printed or
    logged); the reply holds every buffered span of that trace.
    """

    trace_id: str


@dataclass(frozen=True)
class TraceReply:
    """Supervisor → client: one trace's spans, timeline-ordered.

    ``spans`` is a tuple of wire span dicts (the same validated shape
    that rides result envelopes) — ``repro.cli trace view`` renders
    it directly.  Empty means the trace id is unknown or already
    evicted from the bounded buffer.
    """

    trace_id: str
    spans: tuple = ()


@dataclass(frozen=True)
class ByeFrame:
    """Either side announces an orderly departure."""

    reason: str = ""


Frame = Union[
    TaskRequest,
    TaskAssign,
    CommitmentFrame,
    ChallengeFrame,
    ProofsFrame,
    SubmissionFrame,
    VerdictFrame,
    ErrorFrame,
    WorkerHello,
    HeartbeatFrame,
    JobFrame,
    ResultFrame,
    ResultPartFrame,
    ResultEndFrame,
    StatsRequest,
    StatsReply,
    TraceGetRequest,
    TraceReply,
    ByeFrame,
]

#: type tag ↔ (frame class, wrapped binary message class)
_MSG_FRAMES = {
    "commitment": (CommitmentFrame, CommitmentMsg),
    "challenge": (ChallengeFrame, SampleChallengeMsg),
    "proofs": (ProofsFrame, ProofBundleMsg),
    "submission": (SubmissionFrame, NICBSSubmissionMsg),
    "verdict": (VerdictFrame, VerdictMsg),
}
_FRAME_TAGS = {cls: tag for tag, (cls, _msg) in _MSG_FRAMES.items()}


# ----------------------------------------------------------------------
# Field helpers (validation-first: hostile JSON must not crash)
# ----------------------------------------------------------------------


def _b64(raw: bytes) -> str:
    return base64.b64encode(raw).decode("ascii")


def _unb64(value: object, what: str) -> bytes:
    if not isinstance(value, str):
        raise ProtocolError(f"{what}: expected base64 string")
    try:
        return base64.b64decode(value, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise ProtocolError(f"{what}: invalid base64: {exc}") from exc


def _int_field(obj: dict, key: str) -> int:
    value = obj.get(key)
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError(f"frame field {key!r} must be an integer")
    return value


def _str_field(obj: dict, key: str) -> str:
    value = obj.get(key)
    if not isinstance(value, str):
        raise ProtocolError(f"frame field {key!r} must be a string")
    return value


def _trace_field(obj: dict, key: str) -> str | None:
    """Optional trace/span id: absent (or null) is fine, junk is not."""
    value = obj.get(key)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            f"frame field {key!r} must be a non-empty string"
        )
    if len(value) > MAX_TRACE_ID_LEN:
        raise ProtocolError(
            f"frame field {key!r} exceeds {MAX_TRACE_ID_LEN} chars"
        )
    return value


# ----------------------------------------------------------------------
# Cluster frame field helpers
# ----------------------------------------------------------------------


def _cluster_version_field(obj: dict) -> int:
    version = _int_field(obj, "v")
    if version not in COMPAT_CLUSTER_WIRE_VERSIONS:
        raise CodecError(
            f"cluster wire version {version} incompatible with "
            f"{sorted(COMPAT_CLUSTER_WIRE_VERSIONS)}"
        )
    return version


def _hello_version_field(obj: dict) -> int:
    """Lenient version for ``hello`` only: shape-checked, not gated.

    The coordinator does its own compatibility check after decoding so
    an incompatible peer gets a ``bye`` naming the required version; a
    negative or absurd value is still junk.
    """
    version = _int_field(obj, "v")
    if not 0 <= version < 1 << 16:
        raise CodecError(f"implausible cluster wire version {version}")
    return version


def _cache_count_field(obj: dict, key: str) -> int:
    """Optional ``ch``/``cm`` scheme-cache count: absent means zero."""
    if key not in obj or obj[key] is None:
        return 0
    count = _int_field(obj, key)
    if not 0 <= count < 1 << 53:
        raise ProtocolError(
            f"frame field {key!r} must be a non-negative count"
        )
    return count


def _spans_field(obj: dict) -> tuple:
    """Optional ``sp`` span list: absent is fine, junk is rejected.

    Same policy as ``tid``/``sid``: validation happens here at the
    codec boundary so a hostile peer's frame dies with a
    :class:`ProtocolError` (one clean rejection) instead of reaching
    the trace store.
    """
    value = obj.get("sp")
    if value is None:
        return ()
    try:
        return validate_wire_spans(value)
    except ValueError as exc:
        raise ProtocolError(f"frame field 'sp': {exc}") from exc


def _cluster_payload_field(obj: dict, what: str) -> bytes:
    raw = _unb64(obj.get("p"), what)
    check_payload_size(what, len(raw), MAX_CLUSTER_PAYLOAD_BYTES)
    return raw


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------


def _payload_dict(frame: Frame) -> dict:
    if isinstance(frame, TaskRequest):
        obj: dict = {"t": "task_request"}
        if frame.participant is not None:
            obj["participant"] = frame.participant
        if frame.trace_id is not None:
            obj["tid"] = frame.trace_id
        if frame.span_id is not None:
            obj["sid"] = frame.span_id
        return obj
    if isinstance(frame, TaskAssign):
        return {
            "t": "assign",
            "m": _b64(frame.assign.encode()),
            "participant": frame.participant,
            "domain": [frame.domain_start, frame.domain_stop],
            "protocol": frame.protocol,
            "n_samples": frame.n_samples,
            "hash": frame.hash_name,
            "sample_hash": frame.sample_hash_name,
            "leaf_encoding": frame.leaf_encoding,
            "seed": frame.seed,
        }
    if isinstance(frame, ErrorFrame):
        return {"t": "error", "message": frame.message}
    if isinstance(frame, WorkerHello):
        return {
            "t": "hello",
            "worker": frame.worker_id,
            "capacity": frame.capacity,
            "v": frame.version,
        }
    if isinstance(frame, HeartbeatFrame):
        return {"t": "heartbeat", "worker": frame.worker_id}
    if isinstance(frame, JobFrame):
        check_payload_size(
            "job payload", len(frame.payload), MAX_CLUSTER_PAYLOAD_BYTES
        )
        obj = {
            "t": "job",
            "id": frame.job_id,
            "p": _b64(frame.payload),
            "v": frame.version,
        }
        if frame.trace_id is not None:
            obj["tid"] = frame.trace_id
        if frame.span_id is not None:
            obj["sid"] = frame.span_id
        return obj
    if isinstance(frame, ResultFrame):
        check_payload_size(
            "result payload", len(frame.payload), MAX_CLUSTER_PAYLOAD_BYTES
        )
        obj = {
            "t": "result",
            "id": frame.job_id,
            "ok": frame.ok,
            "p": _b64(frame.payload),
            "v": frame.version,
        }
        if frame.spans:
            obj["sp"] = list(frame.spans)
        if frame.cache_hits:
            obj["ch"] = frame.cache_hits
        if frame.cache_misses:
            obj["cm"] = frame.cache_misses
        return obj
    if isinstance(frame, ResultPartFrame):
        check_payload_size(
            "result part payload",
            len(frame.payload),
            MAX_CLUSTER_PAYLOAD_BYTES,
        )
        return {
            "t": "result_part",
            "id": frame.job_id,
            "seq": frame.seq,
            "p": _b64(frame.payload),
            "v": frame.version,
        }
    if isinstance(frame, ResultEndFrame):
        obj = {
            "t": "result_end",
            "id": frame.job_id,
            "parts": frame.parts,
            "v": frame.version,
        }
        if frame.spans:
            obj["sp"] = list(frame.spans)
        if frame.cache_hits:
            obj["ch"] = frame.cache_hits
        if frame.cache_misses:
            obj["cm"] = frame.cache_misses
        return obj
    if isinstance(frame, StatsRequest):
        return {"t": "stats_request"}
    if isinstance(frame, StatsReply):
        return {"t": "stats", "stats": frame.stats}
    if isinstance(frame, TraceGetRequest):
        return {"t": "trace_get", "tid": frame.trace_id}
    if isinstance(frame, TraceReply):
        return {"t": "trace", "tid": frame.trace_id, "sp": list(frame.spans)}
    if isinstance(frame, ByeFrame):
        return {"t": "bye", "reason": frame.reason}
    tag = _FRAME_TAGS.get(type(frame))
    if tag is not None:
        return {"t": tag, "m": _b64(frame.msg.encode())}
    raise ProtocolError(f"cannot encode frame of type {type(frame).__name__}")


def _encode_payload(frame: Frame) -> bytes:
    """One frame's canonical JSON payload bytes (no length prefix) —
    the single serialization rule both the sync and async writers use,
    so the two wire paths can never diverge."""
    return json.dumps(
        _payload_dict(frame), separators=(",", ":"), sort_keys=True
    ).encode("utf-8")


def encode_frame(frame: Frame, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one frame: 4-byte length prefix + JSON payload."""
    return frame_buffer(_encode_payload(frame), max_frame=max_frame)


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------


def decode_frame_payload(payload: bytes) -> Frame:
    """Decode the JSON payload of one frame (length prefix stripped)."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload must be a JSON object")
    tag = obj.get("t")
    if not isinstance(tag, str):
        raise ProtocolError("frame missing string type tag 't'")

    if tag == "task_request":
        participant: int | None = None
        if "participant" in obj and obj["participant"] is not None:
            participant = _int_field(obj, "participant")
            if participant < 0:
                raise ProtocolError("participant index must be >= 0")
        return TaskRequest(
            participant=participant,
            trace_id=_trace_field(obj, "tid"),
            span_id=_trace_field(obj, "sid"),
        )

    if tag == "assign":
        assign = AssignMsg.decode(_unb64(obj.get("m"), "assign message"))
        domain = obj.get("domain")
        if (
            not isinstance(domain, list)
            or len(domain) != 2
            or not all(
                isinstance(v, int) and not isinstance(v, bool) for v in domain
            )
        ):
            raise ProtocolError("assign 'domain' must be [start, stop] ints")
        if domain[1] <= domain[0]:
            raise ProtocolError(
                f"assign domain [{domain[0]}, {domain[1]}) is empty"
            )
        # Value-level validation: a client must never crash with a
        # non-ReproError because a buggy or hostile supervisor sent
        # legal JSON with illegal values.
        protocol = _str_field(obj, "protocol")
        if protocol not in ("cbs", "ni-cbs"):
            raise ProtocolError(f"unknown protocol {protocol!r}")
        leaf_encoding = _str_field(obj, "leaf_encoding")
        if leaf_encoding not in ("hashed", "raw"):
            raise ProtocolError(f"unknown leaf encoding {leaf_encoding!r}")
        n_samples = _int_field(obj, "n_samples")
        if n_samples < 1:
            raise ProtocolError(f"n_samples must be >= 1, got {n_samples}")
        participant = _int_field(obj, "participant")
        if participant < 0:
            raise ProtocolError("participant index must be >= 0")
        seed = _int_field(obj, "seed")
        if not 0 <= seed < 1 << 63:
            raise ProtocolError(f"seed {seed} outside [0, 2^63)")
        return TaskAssign(
            assign=assign,
            participant=participant,
            domain_start=domain[0],
            domain_stop=domain[1],
            protocol=protocol,
            n_samples=n_samples,
            hash_name=_str_field(obj, "hash"),
            sample_hash_name=_str_field(obj, "sample_hash"),
            leaf_encoding=leaf_encoding,
            seed=seed,
        )

    if tag == "error":
        return ErrorFrame(message=_str_field(obj, "message"))

    if tag == "hello":
        capacity = _int_field(obj, "capacity")
        if capacity < 1:
            raise ProtocolError(f"worker capacity must be >= 1, got {capacity}")
        return WorkerHello(
            worker_id=_str_field(obj, "worker"),
            capacity=capacity,
            version=_hello_version_field(obj),
        )

    if tag == "heartbeat":
        return HeartbeatFrame(worker_id=_str_field(obj, "worker"))

    if tag == "job":
        version = _cluster_version_field(obj)
        job_id = _int_field(obj, "id")
        if job_id < 0:
            raise ProtocolError(f"job id must be >= 0, got {job_id}")
        return JobFrame(
            job_id=job_id,
            payload=_cluster_payload_field(obj, "job payload"),
            version=version,
            trace_id=_trace_field(obj, "tid"),
            span_id=_trace_field(obj, "sid"),
        )

    if tag == "result":
        version = _cluster_version_field(obj)
        job_id = _int_field(obj, "id")
        if job_id < 0:
            raise ProtocolError(f"job id must be >= 0, got {job_id}")
        ok = obj.get("ok")
        if not isinstance(ok, bool):
            raise ProtocolError("result frame field 'ok' must be a boolean")
        return ResultFrame(
            job_id=job_id,
            ok=ok,
            payload=_cluster_payload_field(obj, "result payload"),
            version=version,
            spans=_spans_field(obj),
            cache_hits=_cache_count_field(obj, "ch"),
            cache_misses=_cache_count_field(obj, "cm"),
        )

    if tag == "result_part":
        version = _cluster_version_field(obj)
        job_id = _int_field(obj, "id")
        if job_id < 0:
            raise ProtocolError(f"job id must be >= 0, got {job_id}")
        seq = _int_field(obj, "seq")
        if seq < 0:
            raise ProtocolError(f"result part seq must be >= 0, got {seq}")
        return ResultPartFrame(
            job_id=job_id,
            seq=seq,
            payload=_cluster_payload_field(obj, "result part payload"),
            version=version,
        )

    if tag == "result_end":
        version = _cluster_version_field(obj)
        job_id = _int_field(obj, "id")
        if job_id < 0:
            raise ProtocolError(f"job id must be >= 0, got {job_id}")
        parts = _int_field(obj, "parts")
        if parts < 1:
            raise ProtocolError(
                f"result stream must have >= 1 parts, got {parts}"
            )
        return ResultEndFrame(
            job_id=job_id,
            parts=parts,
            version=version,
            spans=_spans_field(obj),
            cache_hits=_cache_count_field(obj, "ch"),
            cache_misses=_cache_count_field(obj, "cm"),
        )

    if tag == "stats_request":
        return StatsRequest()

    if tag == "stats":
        stats = obj.get("stats")
        if not isinstance(stats, dict):
            raise ProtocolError("stats frame field 'stats' must be an object")
        return StatsReply(stats=stats)

    if tag == "trace_get":
        trace_id = _trace_field(obj, "tid")
        if trace_id is None:
            raise ProtocolError("trace_get frame requires a 'tid' field")
        return TraceGetRequest(trace_id=trace_id)

    if tag == "trace":
        trace_id = _trace_field(obj, "tid")
        if trace_id is None:
            raise ProtocolError("trace frame requires a 'tid' field")
        return TraceReply(trace_id=trace_id, spans=_spans_field(obj))

    if tag == "bye":
        return ByeFrame(reason=_str_field(obj, "reason"))

    entry = _MSG_FRAMES.get(tag)
    if entry is None:
        raise ProtocolError(f"unknown frame type {tag!r}")
    frame_cls, msg_cls = entry
    return frame_cls(msg=msg_cls.decode(_unb64(obj.get("m"), f"{tag} message")))


def decode_frame(data: bytes, max_frame: int = MAX_FRAME_BYTES) -> Frame:
    """Decode a complete frame buffer (header + payload, nothing else)."""
    return decode_frame_payload(split_frame_buffer(data, max_frame=max_frame))


# ----------------------------------------------------------------------
# Async stream helpers (framing mechanics live in repro.net.framing)
# ----------------------------------------------------------------------

#: frame class → wire tag, for the per-type frame counter below.
_WIRE_TAGS: dict[type, str] = {
    TaskRequest: "task_request",
    TaskAssign: "assign",
    ErrorFrame: "error",
    WorkerHello: "hello",
    HeartbeatFrame: "heartbeat",
    JobFrame: "job",
    ResultFrame: "result",
    ResultPartFrame: "result_part",
    ResultEndFrame: "result_end",
    StatsRequest: "stats_request",
    StatsReply: "stats",
    TraceGetRequest: "trace_get",
    TraceReply: "trace",
    ByeFrame: "bye",
    **{cls: tag for tag, (cls, _msg) in _MSG_FRAMES.items()},
}

# Net-plane instrumentation lives on the process-global registry (one
# transport, one scrape), created lazily so importing the codec never
# touches the registry.
_net_frames = None
_net_bytes = None


def _net_metrics():
    global _net_frames, _net_bytes
    if _net_frames is None:
        registry = default_registry()
        _net_frames = registry.counter(
            "repro_net_frames_total",
            "Wire frames read/written, by frame type and direction",
            ("type", "direction"),
        )
        _net_bytes = registry.histogram(
            "repro_net_frame_payload_bytes",
            "Frame payload sizes in bytes, by direction",
            ("direction",),
            buckets=SIZE_BUCKETS,
        )
    return _net_frames, _net_bytes


def _record_frame(frame: Frame, payload_len: int, direction: str) -> None:
    frames, sizes = _net_metrics()
    tag = _WIRE_TAGS.get(type(frame), "unknown")
    frames.labels(type=tag, direction=direction).inc()
    sizes.labels(direction=direction).observe(payload_len)


async def read_frame(reader, max_frame: int = MAX_FRAME_BYTES) -> Frame | None:
    """Read one frame from an asyncio stream reader.

    Returns ``None`` on clean EOF (no partial header); raises
    :class:`ProtocolError` on a truncated or oversized frame.
    """
    payload = await read_frame_bytes(reader, max_frame=max_frame)
    if payload is None:
        return None
    frame = decode_frame_payload(payload)
    _record_frame(frame, len(payload), "in")
    return frame


async def write_frame(
    writer, frame: Frame, max_frame: int = MAX_FRAME_BYTES
) -> None:
    """Write one frame and drain — the backpressure point for senders."""
    payload = _encode_payload(frame)
    _record_frame(frame, len(payload), "out")
    await write_frame_bytes(writer, payload, max_frame=max_frame)
