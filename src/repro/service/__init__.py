"""Grid service layer: the supervisor as a networked asyncio system.

Everything below :mod:`repro.core` treats the paper's protocols as
in-process function calls; this package runs them as a service — the
§4 GRACE deployment shape, and the architecture the related
storage-subnet work uses for commitment verification against remote,
untrusted clients:

* :mod:`repro.service.codec` — length-prefixed JSON frames wrapping
  the canonical binary protocol messages (base64 payloads), plus the
  shared workload catalogue.
* :mod:`repro.service.sessions` — the assignment → commitment →
  outcome lifecycle store with TTL eviction of abandoned sessions.
* :mod:`repro.service.server` — :class:`SupervisorServer`, a
  concurrent asyncio TCP (or in-process) supervisor with
  per-connection bounded queues and verification offloaded onto the
  execution engine via ``loop.run_in_executor``.
* :mod:`repro.service.client` — the async participant.
* :mod:`repro.service.loadgen` — N concurrent honest/cheating
  participants, reporting a
  :class:`~repro.grid.report.DetectionReport` plus throughput and
  latency percentiles.

Transport mechanics — length-prefix framing, the HMAC shared-secret
handshake, TLS contexts, connect retry/backoff — live one layer down
in :mod:`repro.net`; :class:`repro.net.SecurityConfig` (re-exported
here) is how a deployment hands the server and clients their secret
and certificate material (README "Security model").

CLI entry points: ``repro-experiments serve`` and
``repro-experiments loadgen``.
"""

from repro.net.transport import SecurityConfig

from repro.service.codec import (
    CLUSTER_WIRE_VERSION,
    FRAME_HEADER_BYTES,
    MAX_CLUSTER_FRAME_BYTES,
    MAX_CLUSTER_PAYLOAD_BYTES,
    MAX_FRAME_BYTES,
    WORKLOADS,
    ByeFrame,
    ChallengeFrame,
    CommitmentFrame,
    ErrorFrame,
    Frame,
    HeartbeatFrame,
    JobFrame,
    ProofsFrame,
    ResultFrame,
    StatsReply,
    StatsRequest,
    SubmissionFrame,
    TaskAssign,
    TaskRequest,
    VerdictFrame,
    WorkerHello,
    decode_cluster_payload,
    decode_frame,
    decode_frame_payload,
    encode_cluster_payload,
    encode_frame,
    read_frame,
    resolve_workload,
    write_frame,
)
from repro.service.client import ParticipantRun, ServiceClient
from repro.service.loadgen import (
    LoadgenStats,
    percentile,
    run_loadgen,
    run_service_loadgen,
    run_service_loadgen_sync,
)
from repro.service.server import (
    MemoryStreamWriter,
    ServiceConfig,
    ServiceStats,
    SupervisorServer,
    memory_duplex,
)
from repro.service.sessions import (
    Session,
    SessionState,
    SessionStore,
    StoreStats,
)

__all__ = [
    # codec
    "FRAME_HEADER_BYTES",
    "MAX_FRAME_BYTES",
    "CLUSTER_WIRE_VERSION",
    "MAX_CLUSTER_FRAME_BYTES",
    "MAX_CLUSTER_PAYLOAD_BYTES",
    "WORKLOADS",
    "resolve_workload",
    "Frame",
    "TaskRequest",
    "TaskAssign",
    "CommitmentFrame",
    "ChallengeFrame",
    "ProofsFrame",
    "SubmissionFrame",
    "VerdictFrame",
    "ErrorFrame",
    "WorkerHello",
    "HeartbeatFrame",
    "JobFrame",
    "ResultFrame",
    "StatsRequest",
    "StatsReply",
    "ByeFrame",
    "encode_frame",
    "decode_frame",
    "decode_frame_payload",
    "encode_cluster_payload",
    "decode_cluster_payload",
    "read_frame",
    "write_frame",
    # transport security (repro.net)
    "SecurityConfig",
    # sessions
    "Session",
    "SessionState",
    "SessionStore",
    "StoreStats",
    # server
    "ServiceConfig",
    "ServiceStats",
    "SupervisorServer",
    "MemoryStreamWriter",
    "memory_duplex",
    # client
    "ServiceClient",
    "ParticipantRun",
    # loadgen
    "LoadgenStats",
    "percentile",
    "run_loadgen",
    "run_service_loadgen",
    "run_service_loadgen_sync",
]
