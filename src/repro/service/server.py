"""The supervisor as a concurrent asyncio service.

This is the paper's §4 topology made executable: one long-lived
supervisor process verifying commitment-based submissions from many
remote, untrusted participants it never meets.  The in-memory
:class:`~repro.grid.network.Network` loop exercises the *message
flow*; this server exercises the *system* — framed bytes on sockets,
concurrent sessions, backpressure, abandoned-session eviction, and
CPU-bound proof verification offloaded from the event loop onto the
execution engine (:mod:`repro.engine`).

Determinism is preserved end to end: task ``i`` gets subdomain ``i``
of the configured domain and seed ``derive_seed(config.seed, i)`` —
exactly the job list :class:`~repro.grid.simulation.GridSimulation`
builds — so a service run at a fixed seed produces byte-identical
:class:`~repro.core.scheme.VerificationOutcome`s to the synchronous
scheme layer (the parity tests pin this).

Concurrency model:

* one reader task per connection feeds a **bounded** frame queue; when
  the queue fills, the reader stops reading and TCP flow control
  pushes back on the client — a flooding participant slows itself, not
  the supervisor;
* one processor task per connection consumes frames in order (CBS
  rounds are stateful, so per-connection ordering matters);
* verification is shipped to the engine's worker pool through
  ``loop.run_in_executor`` as module-level jobs
  (:mod:`repro.service.verification_jobs`), bounded by a server-wide
  semaphore so a burst of submissions queues instead of swamping the
  pool;
* a sweeper task periodically evicts abandoned sessions.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import logging
import time
from dataclasses import dataclass

from repro.core.cbs import CBSSupervisor
from repro.core.protocol import (
    AssignMsg,
    CommitmentMsg,
    NICBSSubmissionMsg,
    ProofBundleMsg,
    VerdictMsg,
)
from repro.core.scheme import VerificationOutcome
from repro.engine import Executor, derive_seed, get_executor
from repro.engine.executor import _metered_map
from repro.exceptions import ProtocolError, ReproError
from repro.merkle.hashing import get_hash
from repro.net.transport import SecurityConfig
from repro.merkle.tree import LeafEncoding
from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.spans import SpanBuffer, default_span_buffer
from repro.obs.trace import bind_trace
from repro.service.codec import (
    MAX_FRAME_BYTES,
    ChallengeFrame,
    CommitmentFrame,
    ErrorFrame,
    Frame,
    ProofsFrame,
    StatsReply,
    StatsRequest,
    SubmissionFrame,
    TaskAssign,
    TaskRequest,
    TraceGetRequest,
    TraceReply,
    VerdictFrame,
    read_frame,
    resolve_workload,
    write_frame,
)
from repro.service.sessions import Session, SessionState, SessionStore
from repro.service.verification_jobs import verify_cbs_job, verify_nicbs_job
from repro.tasks.domain import RangeDomain
from repro.tasks.result import TaskAssignment


@dataclass
class ServiceConfig:
    """Everything one service deployment needs.

    Mirrors :class:`~repro.grid.simulation.SimulationConfig` minus the
    behaviours (those live client-side, where cheating happens): the
    global domain is partitioned across ``n_participants`` slots, task
    ``i`` is seeded ``derive_seed(seed, i)``, and the scheme
    parameters are shipped to clients in the assign frame.

    Only :class:`~repro.tasks.domain.RangeDomain` travels over the
    wire — remote clients rebuild their subdomain from two integers,
    which is also how real grids describe work units (key ranges,
    chunk ids).
    """

    domain: RangeDomain
    workload: str = "PasswordSearch"
    protocol: str = "ni-cbs"
    n_samples: int = 16
    hash_name: str = "sha256"
    sample_hash_name: str = "sha256"
    leaf_encoding: LeafEncoding = LeafEncoding.HASHED
    n_participants: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.protocol not in ("cbs", "ni-cbs"):
            raise ProtocolError(f"unknown protocol {self.protocol!r}")
        if not isinstance(self.domain, RangeDomain):
            raise ProtocolError(
                "the service ships domain bounds on the wire; only "
                f"RangeDomain is supported, got {type(self.domain).__name__}"
            )
        if self.n_participants < 1:
            raise ProtocolError(
                f"n_participants must be >= 1, got {self.n_participants}"
            )
        resolve_workload(self.workload)  # fail fast on unknown kernels


_log = get_logger("service")


class ServiceStats:
    """Compatibility view over the server's metrics registry.

    These used to be a private dataclass of ints; the counts now live
    in the server's :class:`MetricsRegistry` (one labelled counter per
    family), and this view keeps the established read API
    (``server.stats.verifications`` etc.) working unchanged for smoke
    tests and embedded uses.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    @property
    def connections(self) -> int:
        return int(self._registry.value("repro_connections_total"))

    @property
    def frames_in(self) -> int:
        return int(
            self._registry.value("repro_frames_total", direction="in")
        )

    @property
    def verifications(self) -> int:
        return int(self._registry.value("repro_verifications_total"))

    @property
    def errors(self) -> int:
        return int(self._registry.sum_values("repro_errors_total"))

    @property
    def auth_failures(self) -> int:
        return int(
            self._registry.value(
                "repro_auth_failures_total", plane="service"
            )
        )


# ----------------------------------------------------------------------
# In-process transport (tests and self-contained load generation)
# ----------------------------------------------------------------------


class MemoryStreamWriter:
    """Write end of an in-process duplex: feeds the peer's reader.

    Duck-types the slice of :class:`asyncio.StreamWriter` the codec
    and server use (``write``/``drain``/``close``/``wait_closed``), so
    the same connection handler serves TCP sockets and tests without a
    loopback socket.
    """

    def __init__(self, peer_reader: asyncio.StreamReader) -> None:
        self._peer = peer_reader
        self._closed = False

    def write(self, data: bytes) -> None:
        if self._closed:
            raise ProtocolError("write to closed in-process transport")
        self._peer.feed_data(data)

    async def drain(self) -> None:
        await asyncio.sleep(0)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._peer.feed_eof()

    def is_closing(self) -> bool:
        return self._closed

    async def wait_closed(self) -> None:
        return None

    def get_extra_info(self, name: str, default=None):
        return default


def memory_duplex() -> tuple[
    tuple[asyncio.StreamReader, MemoryStreamWriter],
    tuple[asyncio.StreamReader, MemoryStreamWriter],
]:
    """Two connected (reader, writer) endpoints in one process."""
    a_reader = asyncio.StreamReader()
    b_reader = asyncio.StreamReader()
    return (a_reader, MemoryStreamWriter(b_reader)), (
        b_reader,
        MemoryStreamWriter(a_reader),
    )


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------


class SupervisorServer:
    """Concurrent supervisor service over TCP or in-process streams."""

    def __init__(
        self,
        config: ServiceConfig,
        engine: str | Executor = "threads",
        workers: int | None = None,
        *,
        engine_options: dict | None = None,
        security: SecurityConfig | None = None,
        session_ttl: float = 300.0,
        queue_size: int = 32,
        max_pending_verifications: int = 128,
        max_frame: int = MAX_FRAME_BYTES,
        clock=time.monotonic,
        registry: MetricsRegistry | None = None,
        span_buffer: SpanBuffer | None = None,
    ) -> None:
        if queue_size < 1:
            raise ProtocolError(f"queue_size must be >= 1, got {queue_size}")
        if max_pending_verifications < 1:
            raise ProtocolError(
                "max_pending_verifications must be >= 1, "
                f"got {max_pending_verifications}"
            )
        self.config = config
        # engine_options reach backend constructors (the cluster
        # engine's tuning knobs); an Executor instance takes none.
        self._executor = get_executor(engine, workers, **(engine_options or {}))
        self._owns_executor = self._executor is not engine
        # security gates the participant socket: optional TLS on the
        # listener, and — when a secret is configured — the repro.net
        # HMAC handshake before any frame is decoded.
        self._security = security
        self._queue_size = queue_size
        self._max_frame = max_frame
        self._verify_slots = asyncio.Semaphore(max_pending_verifications)
        # A fresh per-instance registry by default (exactly-counted,
        # isolated — what tests and embedded servers want); the CLI
        # injects the process-global default registry so one scrape
        # covers every subsystem.
        self.registry = registry if registry is not None else MetricsRegistry()
        # Completed spans (local and cluster-assembled) served over the
        # authenticated trace_get frame; the default is the process
        # global so the coordinator's assembly is visible here.
        self.span_buffer = (
            span_buffer if span_buffer is not None else default_span_buffer()
        )
        self.sessions = SessionStore(
            ttl=session_ttl, clock=clock, registry=self.registry
        )
        self.stats = ServiceStats(self.registry)
        self._m_connections = self.registry.counter(
            "repro_connections_total", "Participant connections accepted"
        )
        self._m_frames = self.registry.counter(
            "repro_frames_total",
            "Service frames processed, by direction",
            ("direction",),
        )
        self._m_verifications = self.registry.counter(
            "repro_verifications_total", "Verifications completed"
        )
        self._m_verdicts = self.registry.counter(
            "repro_verdicts_total",
            "Verdicts recorded, by outcome (accepted or rejection reason)",
            ("outcome",),
        )
        self._m_errors = self.registry.counter(
            "repro_errors_total",
            "Errors that dropped a connection or request, by site",
            ("site",),
        )
        self._m_auth_failures = self.registry.counter(
            "repro_auth_failures_total",
            "Rejected authentication handshakes, by plane",
            ("plane",),
        )
        self._m_latency = self.registry.histogram(
            "repro_submission_latency_seconds",
            "Wall-clock from submission/proofs arrival to verdict",
            buckets=LATENCY_BUCKETS,
        )
        self._m_active = self.registry.gauge(
            "repro_sessions_active", "Sessions currently mid-protocol"
        )

        function = resolve_workload(config.workload)
        subdomains = config.domain.partition(config.n_participants)
        self._assignments: list[TaskAssignment] = [
            TaskAssignment(
                task_id=f"task-{i}", domain=subdomain, function=function
            )
            for i, subdomain in enumerate(subdomains)
        ]
        self._seeds = [
            derive_seed(config.seed, i) for i in range(config.n_participants)
        ]
        self._next_participant = 0

        self._server: asyncio.base_events.Server | None = None
        self._sweeper: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind the TCP listener; returns the actual (host, port)."""
        if self._server is not None:
            raise ProtocolError("server already started")
        # A *sync* connected-callback that spawns our own task: if
        # start_server wrapped a coroutine itself, its done-callback
        # would call task.exception() and log noise when stop()
        # cancels straggling connections.
        ssl_context = (
            self._security.server_ssl_context()
            if self._security is not None
            else None
        )
        self._server = await asyncio.start_server(
            self._spawn_connection, host, port, ssl=ssl_context
        )
        self._ensure_sweeper()
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def connect_memory(self) -> tuple[asyncio.StreamReader, MemoryStreamWriter]:
        """Open an in-process connection; returns the client endpoint."""
        (server_reader, server_writer), client = memory_duplex()
        self._ensure_sweeper()
        self._spawn_connection(server_reader, server_writer)
        return client

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ProtocolError("start() the server before serve_forever()")
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Close listener, connections, sweeper and (owned) executor."""
        if self._sweeper is not None:
            self._sweeper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._sweeper
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            # Let in-flight rounds drain briefly, then cancel stragglers.
            _done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=1.0
            )
            for task in pending:
                task.cancel()
            for task in pending:
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await task
        self._conn_tasks.clear()
        if self._owns_executor:
            self._executor.close()

    def _ensure_sweeper(self) -> None:
        if self._sweeper is None or self._sweeper.done():
            self._sweeper = asyncio.ensure_future(self._sweep_loop())

    async def _sweep_loop(self) -> None:
        interval = max(self.sessions.ttl / 4.0, 0.05)
        while True:
            await asyncio.sleep(interval)
            evicted = self.sessions.evict_stale()
            if evicted:
                log_event(
                    _log,
                    "sessions_evicted",
                    count=len(evicted),
                    task_ids=evicted[:8],
                )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def outcomes(self) -> dict[str, VerificationOutcome]:
        """Per-task verdicts recorded so far."""
        return self.sessions.outcomes

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    def _spawn_connection(self, reader, writer) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_connection(self, reader, writer) -> None:
        self._m_connections.inc()
        try:
            if self._security is not None:
                # The HMAC handshake runs underneath the codec: a peer
                # without the secret is cut off here, before a single
                # application frame is decoded.
                try:
                    await self._security.authenticate_inbound(reader, writer)
                except (ReproError, ConnectionError, OSError) as exc:
                    self._m_auth_failures.labels(plane="service").inc()
                    log_event(
                        _log,
                        "auth_failure",
                        level=logging.WARNING,
                        plane="service",
                        error=str(exc),
                    )
                    return
            await self._handle_connection(reader, writer)
        finally:
            with contextlib.suppress(Exception):
                writer.close()
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await writer.wait_closed()

    async def _handle_connection(self, reader, writer) -> None:
        # Bounded frame queue between the socket and the processor:
        # when the processor falls behind (verification pool busy), the
        # reader stops pulling bytes and TCP pushes back on the peer.
        queue: asyncio.Queue = asyncio.Queue(maxsize=self._queue_size)

        async def read_loop() -> None:
            try:
                while True:
                    frame = await read_frame(reader, max_frame=self._max_frame)
                    await queue.put(frame)
                    if frame is None:
                        return
            except ReproError as exc:
                await queue.put(exc)

        reader_task = asyncio.ensure_future(read_loop())
        trace_id: str | None = None
        span_id: str | None = None
        try:
            while True:
                item = await queue.get()
                if item is None:
                    return
                if isinstance(item, Exception):
                    raise item
                self._m_frames.labels(direction="in").inc()
                trace_id, span_id = self._trace_for(item)
                with bind_trace(trace_id, span_id):
                    replies = await self._dispatch(item)
                    for reply in replies:
                        await write_frame(
                            writer, reply, max_frame=self._max_frame
                        )
                        self._m_frames.labels(direction="out").inc()
        except ReproError as exc:
            # A misbehaving peer gets one terminal error frame, then
            # the connection closes; the server itself never crashes.
            self._m_errors.labels(site="connection").inc()
            with bind_trace(trace_id, span_id):
                log_event(
                    _log,
                    "connection_error",
                    level=logging.WARNING,
                    site="connection",
                    error=str(exc),
                )
            with contextlib.suppress(Exception):
                await write_frame(writer, ErrorFrame(str(exc)))
        finally:
            reader_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await reader_task

    def _trace_for(self, frame: Frame) -> tuple[str | None, str | None]:
        """The trace context a frame belongs to.

        A task request carries its own ids; protocol frames inherit
        the ids their session was opened with (looked up without
        touching the TTL clock — unknown tasks fail in the handler).
        """
        if isinstance(frame, TaskRequest):
            return frame.trace_id, frame.span_id
        task_id = getattr(getattr(frame, "msg", None), "task_id", None)
        if task_id is not None:
            session = self.sessions.peek(task_id)
            if session is not None:
                return session.trace_id, session.span_id
        return None, None

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------

    async def _dispatch(self, frame: Frame) -> list[Frame]:
        if isinstance(frame, TaskRequest):
            return [self._handle_task_request(frame)]
        if isinstance(frame, CommitmentFrame):
            return [self._handle_commitment(frame.msg)]
        if isinstance(frame, ProofsFrame):
            return [await self._handle_proofs(frame.msg)]
        if isinstance(frame, SubmissionFrame):
            return [await self._handle_submission(frame.msg)]
        if isinstance(frame, StatsRequest):
            return [StatsReply(stats=self.stats_snapshot())]
        if isinstance(frame, TraceGetRequest):
            return [
                TraceReply(
                    trace_id=frame.trace_id,
                    spans=tuple(
                        s.to_wire()
                        for s in self.span_buffer.trace(frame.trace_id)
                    ),
                )
            ]
        raise ProtocolError(
            f"unexpected frame {type(frame).__name__} at the supervisor"
        )

    def stats_snapshot(self) -> dict:
        """The registry snapshot, with liveness gauges refreshed."""
        self._m_active.set(self.sessions.active)
        return self.registry.snapshot()

    def _handle_task_request(self, request: TaskRequest) -> TaskAssign:
        config = self.config
        if request.participant is not None:
            index = request.participant
            if not 0 <= index < config.n_participants:
                raise ProtocolError(
                    f"participant {index} outside [0, {config.n_participants})"
                )
        else:
            while (
                self._next_participant < config.n_participants
                and f"task-{self._next_participant}" in self.sessions
            ):
                self._next_participant += 1
            if self._next_participant < config.n_participants:
                index = self._next_participant
            else:
                # The cursor is exhausted, but eviction may have freed
                # earlier slots — one scan keeps them assignable.
                freed = next(
                    (
                        i
                        for i in range(config.n_participants)
                        if f"task-{i}" not in self.sessions
                    ),
                    None,
                )
                if freed is None:
                    raise ProtocolError("no unassigned participant slots left")
                index = freed
        assignment = self._assignments[index]
        seed = self._seeds[index]
        session = self.sessions.create(
            task_id=assignment.task_id,
            participant=index,
            assignment=assignment,
            seed=seed,
            protocol=config.protocol,
            trace_id=request.trace_id,
            span_id=request.span_id,
        )
        log_event(
            _log,
            "task_assigned",
            level=logging.DEBUG,
            task_id=assignment.task_id,
            participant=index,
        )
        domain: RangeDomain = session.assignment.domain  # type: ignore[assignment]
        return TaskAssign(
            assign=AssignMsg(
                task_id=assignment.task_id,
                n_inputs=assignment.n_inputs,
                workload=config.workload,
            ),
            participant=index,
            domain_start=domain.start,
            domain_stop=domain.stop,
            protocol=config.protocol,
            n_samples=config.n_samples,
            hash_name=config.hash_name,
            sample_hash_name=config.sample_hash_name,
            leaf_encoding=config.leaf_encoding.value,
            seed=seed,
        )

    def _handle_commitment(self, msg: CommitmentMsg) -> ChallengeFrame:
        if self.config.protocol != "cbs":
            raise ProtocolError("commitments only arrive in interactive CBS")
        session = self.sessions.get(msg.task_id)
        # Validate and draw the challenge with the real CBS supervisor
        # (cheap: digest-size checks plus m RNG draws); the heavyweight
        # verify happens off-loop when the proofs arrive.
        supervisor = CBSSupervisor(
            session.assignment,
            n_samples=self.config.n_samples,
            hash_fn=get_hash(self.config.hash_name),
            leaf_encoding=self.config.leaf_encoding,
            seed=session.seed,
        )
        supervisor.receive_commitment(msg)
        challenge = supervisor.make_challenge()
        self.sessions.record_commitment(msg.task_id, msg, challenge)
        return ChallengeFrame(msg=challenge)

    async def _handle_proofs(self, msg: ProofBundleMsg) -> VerdictFrame:
        session = self.sessions.begin_verification(
            msg.task_id, SessionState.COMMITTED
        )
        assert session.commitment is not None
        started = time.perf_counter()
        outcome = await self._offload(
            functools.partial(
                verify_cbs_job,
                session.assignment,
                self.config.n_samples,
                self.config.hash_name,
                self.config.leaf_encoding.value,
                session.seed,
                session.commitment,
                msg,
            )
        )
        self._m_latency.observe(time.perf_counter() - started)
        return self._record_verdict(session, outcome)

    async def _handle_submission(self, msg: NICBSSubmissionMsg) -> VerdictFrame:
        if self.config.protocol != "ni-cbs":
            raise ProtocolError(
                "one-shot submissions only arrive in NI-CBS"
            )
        session = self.sessions.begin_verification(
            msg.task_id, SessionState.ASSIGNED
        )
        started = time.perf_counter()
        outcome = await self._offload(
            functools.partial(
                verify_nicbs_job,
                session.assignment,
                self.config.n_samples,
                self.config.sample_hash_name,
                self.config.hash_name,
                self.config.leaf_encoding.value,
                msg,
            )
        )
        self._m_latency.observe(time.perf_counter() - started)
        return self._record_verdict(session, outcome)

    def _record_verdict(
        self, session: Session, outcome: VerificationOutcome
    ) -> VerdictFrame:
        self.sessions.record_outcome(session.task_id, outcome)
        self._m_verifications.inc()
        verdict = "accepted" if outcome.accepted else outcome.reason.value
        self._m_verdicts.labels(outcome=verdict).inc()
        log_event(
            _log,
            "verdict",
            task_id=session.task_id,
            participant=session.participant,
            outcome=verdict,
        )
        return VerdictFrame(
            msg=VerdictMsg(
                task_id=session.task_id,
                accepted=outcome.accepted,
                reason="" if outcome.accepted else outcome.reason.value,
            )
        )

    # ------------------------------------------------------------------
    # Engine offload
    # ------------------------------------------------------------------

    async def _offload(self, job) -> VerificationOutcome:
        """Run a verification job off the event loop, bounded.

        The semaphore caps verifications in flight server-wide; with a
        serial engine (``futures_pool`` is ``None``) the job runs
        inline, which is the deterministic single-thread debug mode.
        """
        async with self._verify_slots:
            pool = self._executor.futures_pool
            # Each verification job is a one-item engine map: offload
            # bypasses Executor.map, so meter it here or the engine
            # plane goes dark under a pure service workload.
            with _metered_map(self._executor.name, 1):
                if pool is None:
                    return job()
                return await asyncio.get_running_loop().run_in_executor(
                    pool, job
                )
