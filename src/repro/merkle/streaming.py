"""Streaming Merkle-root computation in ``O(log n)`` memory.

The full :class:`~repro.merkle.tree.MerkleTree` stores every node
(``O(|D|)`` storage — exactly the problem §3.3 of the paper raises for
``|D| ≫ 2^30``).  When the participant only needs the *commitment*
``Φ(R)`` — or wants to materialize just the top levels for the
storage-optimized variant — results can be folded in one pass with the
classic stack algorithm: keep at most one pending digest per level.

:class:`StreamingMerkleBuilder` is the engine under
:class:`repro.merkle.partial.PartialMerkleTree`: it can optionally
*capture* every node at or above a given level, yielding the stored top
of the tree without ever holding the bottom.
"""

from __future__ import annotations

from itertools import islice

from repro.exceptions import EmptyTreeError, MerkleError
from repro.merkle.hashing import HashFunction, get_hash
from repro.merkle.tree import (
    LeafEncoding,
    combine,
    empty_leaf_digest,
    encode_leaf,
    encode_leaves,
)
from repro.utils.bitmath import next_power_of_two, tree_height


class StreamingMerkleBuilder:
    """Fold leaf payloads into a Merkle root one at a time.

    Parameters
    ----------
    hash_fn:
        Hash function (default SHA-256).
    leaf_encoding:
        Leaf payload encoding (see :class:`~repro.merkle.tree.LeafEncoding`).
    capture_above_level:
        If not ``None``, record the digests of every node whose level is
        ``<= capture_above_level`` *counted from the leaves upward in
        the final tree*.  Because the final height is unknown until
        :meth:`finalize`, the capture parameter is expressed as
        "levels from the bottom": ``capture_above_level = ℓ`` captures
        node digests at heights ``>= ℓ`` (i.e. the top ``H − ℓ + 1``
        levels, matching paper §3.3's partial storage).
    """

    def __init__(
        self,
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        capture_above_level: int | None = None,
    ) -> None:
        self.hash_fn = hash_fn or get_hash("sha256")
        self.leaf_encoding = leaf_encoding
        self.capture_above_level = capture_above_level
        # _stack[h] holds the pending digest at height h (from leaves), or None.
        self._stack: list[bytes | None] = []
        self.n_leaves = 0
        self._finalized_root: bytes | None = None
        # captured[h] is the ordered list of digests produced at height h.
        self._captured: dict[int, list[bytes]] = {}

    # ------------------------------------------------------------------

    def _record(self, height: int, digest: bytes) -> None:
        if (
            self.capture_above_level is not None
            and height >= self.capture_above_level
        ):
            self._captured.setdefault(height, []).append(digest)

    def _push(self, digest: bytes) -> None:
        """Insert a height-0 digest and merge complete pairs upward."""
        height = 0
        self._record(0, digest)
        while True:
            if height == len(self._stack):
                self._stack.append(digest)
                return
            pending = self._stack[height]
            if pending is None:
                self._stack[height] = digest
                return
            digest = combine(self.hash_fn, pending, digest)
            self._stack[height] = None
            height += 1
            self._record(height, digest)

    def add_leaf(self, payload: bytes) -> None:
        """Fold in the next leaf payload (domain order)."""
        if self._finalized_root is not None:
            raise MerkleError("builder already finalized")
        self._push(encode_leaf(payload, self.hash_fn, self.leaf_encoding))
        self.n_leaves += 1

    #: Leaves encoded per batched hash call by :meth:`add_leaves` —
    #: large enough to amortize the Python→hashlib boundary, small
    #: enough to keep the builder's memory bounded on huge iterables.
    ADD_BATCH = 4096

    def add_leaves(self, payloads) -> None:
        """Fold in an iterable of leaf payloads.

        Leaves are encoded in bounded batches through
        :func:`~repro.merkle.tree.encode_leaves` (one
        ``digest_many`` call per :data:`ADD_BATCH` payloads) before
        the stack fold, which is inherently sequential.  Byte-identical
        to repeated :meth:`add_leaf`, and still ``O(log n)`` memory on
        arbitrarily long iterables.
        """
        if self._finalized_root is not None:
            raise MerkleError("builder already finalized")
        iterator = iter(payloads)
        while True:
            batch = list(islice(iterator, self.ADD_BATCH))
            if not batch:
                return
            for digest in encode_leaves(
                batch, self.hash_fn, self.leaf_encoding
            ):
                self._push(digest)
                self.n_leaves += 1

    # ------------------------------------------------------------------

    def finalize(self) -> bytes:
        """Pad to a power of two, collapse the stack, return ``Φ(R)``.

        Idempotent: further calls return the same root.
        """
        if self._finalized_root is not None:
            return self._finalized_root
        if self.n_leaves == 0:
            raise EmptyTreeError("no leaves added")
        padded = next_power_of_two(self.n_leaves)
        pad = empty_leaf_digest(self.hash_fn)
        for _ in range(padded - self.n_leaves):
            self._push(pad)
        self.n_leaves_padded = padded
        # After padding, exactly the top stack slot holds the root.
        top = [d for d in self._stack if d is not None]
        if len(top) != 1:
            raise MerkleError(
                f"internal error: {len(top)} pending digests after padding"
            )
        self._finalized_root = top[0]
        return self._finalized_root

    @property
    def root(self) -> bytes:
        """The finalized root (finalizes on first access)."""
        return self.finalize()

    @property
    def height(self) -> int:
        """Height of the (padded) tree; valid once leaves were added."""
        if self.n_leaves == 0:
            raise EmptyTreeError("no leaves added")
        return tree_height(next_power_of_two(self.n_leaves))

    def captured_levels(self) -> dict[int, list[bytes]]:
        """Digests recorded at each height ``>= capture_above_level``.

        Keys are heights measured from the leaves (0 = leaf level);
        values are node digests in left-to-right order.  Only meaningful
        after :meth:`finalize`.
        """
        if self._finalized_root is None:
            raise MerkleError("finalize() before reading captured levels")
        return {h: list(row) for h, row in self._captured.items()}
