"""Compressed Merkle multiproofs: batch authentication for many leaves.

CBS ships one independent authentication path per sample — ``m·H``
sibling digests.  When several sampled leaves share tree ancestors,
most of those digests are redundant: a *multiproof* sends each needed
digest once and lets the verifier recompute shared interiors.  This is
a standard post-paper optimization (the paper's ``O(m log n)`` bound is
unchanged; the constant drops), implemented here as the E11 ablation.

Construction (standard): mark the target leaves; walk the tree bottom
up; a node's digest must be *supplied* iff it is the sibling of a
covered node and is not itself covered (coverage propagates to parents
when either child is covered).  Verification replays the same walk,
consuming supplied digests in a canonical (level-major, left-to-right)
order, and compares the reconstructed root.

The multiproof is strictly never larger than the concatenation of the
individual paths, and equal only when the targets share no ancestors
below the root.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MerkleError, ProofShapeError
from repro.merkle.hashing import HashFunction
from repro.merkle.tree import LeafEncoding, MerkleTree, combine, encode_leaf
from repro.utils.encoding import (
    encode_bytes_list,
    encode_uint,
    encode_uint_list,
    read_bytes_list,
    read_uint,
    read_uint_list,
)


@dataclass(frozen=True)
class MerkleMultiProof:
    """A batch proof for a set of leaf indices against one root.

    Attributes
    ----------
    leaf_indices:
        Sorted, distinct 0-based leaf indices being proven.
    siblings:
        The supplied digests, in canonical order: leaf level first,
        each level left-to-right.
    n_leaves:
        Real (unpadded) leaf count, fixing the tree geometry.
    leaf_encoding:
        The tree's leaf payload encoding.
    """

    leaf_indices: tuple[int, ...]
    siblings: tuple[bytes, ...]
    n_leaves: int
    leaf_encoding: LeafEncoding = LeafEncoding.HASHED

    def __post_init__(self) -> None:
        if not self.leaf_indices:
            raise ProofShapeError("multiproof needs at least one leaf index")
        if list(self.leaf_indices) != sorted(set(self.leaf_indices)):
            raise ProofShapeError("leaf indices must be sorted and distinct")
        if self.leaf_indices[0] < 0 or self.leaf_indices[-1] >= self.n_leaves:
            raise ProofShapeError(
                f"leaf indices outside [0, {self.n_leaves})"
            )

    # ------------------------------------------------------------------

    def wire_size(self) -> int:
        return len(self.encode())

    def encode(self) -> bytes:
        out = bytearray()
        out += encode_uint(self.n_leaves)
        out += encode_uint(0 if self.leaf_encoding is LeafEncoding.HASHED else 1)
        out += encode_uint_list(list(self.leaf_indices))
        out += encode_bytes_list(list(self.siblings))
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "MerkleMultiProof":
        n_leaves, pos = read_uint(data, 0)
        code, pos = read_uint(data, pos)
        indices, pos = read_uint_list(data, pos)
        siblings, pos = read_bytes_list(data, pos)
        if pos != len(data):
            raise MerkleError("trailing bytes in MerkleMultiProof")
        return cls(
            leaf_indices=tuple(indices),
            siblings=tuple(siblings),
            n_leaves=n_leaves,
            leaf_encoding=(
                LeafEncoding.HASHED if code == 0 else LeafEncoding.RAW
            ),
        )

    # ------------------------------------------------------------------

    def compute_root(
        self, payloads: dict[int, bytes], hash_fn: HashFunction
    ) -> bytes:
        """Reconstruct the root from the claimed leaf payloads.

        ``payloads`` maps each proven leaf index to its claimed result;
        raises :class:`ProofShapeError` on any shape mismatch (missing
        payload, wrong supplied-digest count).
        """
        missing = set(self.leaf_indices) - set(payloads)
        if missing:
            raise ProofShapeError(f"missing payloads for leaves {sorted(missing)}")

        from repro.utils.bitmath import next_power_of_two

        width = next_power_of_two(self.n_leaves)
        # known: index -> digest at the current level.
        known = {
            index: encode_leaf(payloads[index], hash_fn, self.leaf_encoding)
            for index in self.leaf_indices
        }
        supplied = iter(self.siblings)
        consumed = 0
        while width > 1:
            next_known: dict[int, bytes] = {}
            for index in sorted(known):
                parent = index >> 1
                if parent in next_known:
                    continue  # handled with the sibling
                sibling = index ^ 1
                if sibling in known:
                    left, right = (
                        (known[index], known[sibling])
                        if index < sibling
                        else (known[sibling], known[index])
                    )
                else:
                    try:
                        sibling_digest = next(supplied)
                    except StopIteration:
                        raise ProofShapeError(
                            "multiproof ran out of supplied digests"
                        ) from None
                    consumed += 1
                    left, right = (
                        (known[index], sibling_digest)
                        if index % 2 == 0
                        else (sibling_digest, known[index])
                    )
                next_known[parent] = combine(hash_fn, left, right)
            known = next_known
            width >>= 1
        if consumed != len(self.siblings):
            raise ProofShapeError(
                f"{len(self.siblings) - consumed} unused supplied digests"
            )
        return known[0]

    def verify(
        self,
        payloads: dict[int, bytes],
        expected_root: bytes,
        hash_fn: HashFunction,
    ) -> bool:
        """Check the claimed payloads against the committed root."""
        try:
            return self.compute_root(payloads, hash_fn) == expected_root
        except ProofShapeError:
            return False


def build_multiproof(
    tree: MerkleTree, leaf_indices: list[int]
) -> MerkleMultiProof:
    """Build the compressed batch proof for ``leaf_indices`` of ``tree``.

    Indices are deduplicated and sorted (the wire order is canonical);
    padding leaves cannot be proven.
    """
    targets = sorted(set(leaf_indices))
    if not targets:
        raise MerkleError("no leaf indices given")
    for index in targets:
        if not 0 <= index < tree.n_leaves:
            raise MerkleError(
                f"leaf index {index} outside [0, {tree.n_leaves})"
            )

    siblings: list[bytes] = []
    covered = set(targets)
    # Levels are stored root-first in MerkleTree: leaf level is last.
    for level in range(len(tree._levels) - 1, 0, -1):
        next_covered = set()
        for index in sorted(covered):
            parent = index >> 1
            if parent in next_covered:
                continue
            sibling = index ^ 1
            if sibling not in covered:
                siblings.append(tree._levels[level][sibling])
            next_covered.add(parent)
        covered = next_covered
    return MerkleMultiProof(
        leaf_indices=tuple(targets),
        siblings=tuple(siblings),
        n_leaves=tree.n_leaves,
        leaf_encoding=tree.leaf_encoding,
    )
