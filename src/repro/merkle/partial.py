"""Storage-optimized Merkle tree (paper §3.3, Fig. 3).

Instead of storing the entire tree (``O(|D|)`` nodes), the participant
keeps only the nodes at heights ``>= ℓ`` (the paper stores the tree "up
to level H − ℓ" with the root at level 0 — same set of nodes).  Storage
shrinks to ``S = 2^(H−ℓ+1)`` digests; in exchange, answering a sample
challenge requires rebuilding the height-``ℓ`` subtree that contains the
sampled leaf, which means *re-evaluating f* on the subtree's ``2^ℓ``
inputs.  The paper's relative computation overhead is::

    rco = m · 2^ℓ / |D| = 2m / S        (§3.3)

:class:`PartialMerkleTree` exposes the same proving interface as the
full tree and meters both rebuild events and leaf re-evaluations, which
experiment E4 compares against the closed form.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.exceptions import LeafIndexError, MerkleError
from repro.merkle.hashing import HashFunction, get_hash
from repro.merkle.proof import AuthenticationPath
from repro.merkle.streaming import StreamingMerkleBuilder
from repro.merkle.tree import LeafEncoding, combine, empty_leaf_digest, encode_leaf


class PartialMerkleTree:
    """Merkle tree storing only heights ``>= subtree_height`` (ℓ).

    Parameters
    ----------
    payloads:
        Leaf payloads in domain order; consumed in a single streaming
        pass (the full bottom of the tree is never held in memory).
    leaf_provider:
        Callback ``index -> payload`` used to *recompute* leaf payloads
        when a subtree must be rebuilt for a proof.  In the paper this
        is literally re-evaluating ``f(x_i)``; the grid layer passes a
        metered evaluation so the recompute cost lands in the ledger.
    subtree_height:
        ``ℓ``: the height of the discarded bottom subtrees.  ``0``
        stores everything below the root too (equivalent to a full
        tree); ``height`` stores only the root.
    hash_fn, leaf_encoding:
        As for :class:`~repro.merkle.tree.MerkleTree`.
    """

    def __init__(
        self,
        payloads: Iterable[bytes],
        leaf_provider: Callable[[int], bytes],
        subtree_height: int,
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
    ) -> None:
        if subtree_height < 0:
            raise MerkleError(f"subtree_height must be >= 0, got {subtree_height}")
        self.hash_fn = hash_fn or get_hash("sha256")
        self.leaf_encoding = leaf_encoding
        self.leaf_provider = leaf_provider
        self.subtree_height = subtree_height

        builder = StreamingMerkleBuilder(
            hash_fn=self.hash_fn,
            leaf_encoding=leaf_encoding,
            capture_above_level=subtree_height,
        )
        builder.add_leaves(payloads)
        self._root = builder.finalize()
        self.n_leaves = builder.n_leaves
        self.height = builder.height
        if subtree_height > self.height:
            raise MerkleError(
                f"subtree_height {subtree_height} exceeds tree height {self.height}"
            )
        self._stored = builder.captured_levels()

        # Metering for experiment E4.
        self.subtree_rebuilds = 0
        self.leaves_recomputed = 0

    # ------------------------------------------------------------------

    @property
    def root(self) -> bytes:
        """The commitment ``Φ(R)``."""
        return self._root

    @property
    def stored_node_count(self) -> int:
        """Number of digests held in storage (the paper's ``S``, roughly).

        For ``0 < ℓ <= H`` this is ``2^(H−ℓ+1) − 1``; the paper rounds
        it to ``S = 2^(H−ℓ+1)``.
        """
        return sum(len(row) for row in self._stored.values())

    def _check_leaf_index(self, index: int) -> None:
        if not 0 <= index < self.n_leaves:
            raise LeafIndexError(f"leaf index {index} outside [0, {self.n_leaves})")

    # ------------------------------------------------------------------

    def _rebuild_subtree(self, subtree_index: int) -> list[list[bytes]]:
        """Recompute the height-ℓ subtree with leaf range
        ``[subtree_index · 2^ℓ, (subtree_index + 1) · 2^ℓ)``.

        Returns levels bottom-up: ``levels[0]`` is the subtree's leaf
        row, ``levels[ℓ]`` is ``[subtree root]``.  Padding positions
        beyond the real domain use the structural empty-leaf digest.
        """
        width = 1 << self.subtree_height
        start = subtree_index * width
        pad = empty_leaf_digest(self.hash_fn)
        row: list[bytes] = []
        for i in range(start, start + width):
            if i < self.n_leaves:
                payload = self.leaf_provider(i)
                self.leaves_recomputed += 1
                row.append(encode_leaf(payload, self.hash_fn, self.leaf_encoding))
            else:
                row.append(pad)
        levels = [row]
        while len(row) > 1:
            row = [
                combine(self.hash_fn, row[i], row[i + 1])
                for i in range(0, len(row), 2)
            ]
            levels.append(row)
        self.subtree_rebuilds += 1
        return levels

    def auth_path(self, index: int) -> AuthenticationPath:
        """Authentication path for leaf ``index``.

        Siblings at heights ``< ℓ`` come from the rebuilt subtree
        (Fig. 3(b): the ``V1..V3`` nodes whose Φ values "need to be
        recomputed"); siblings at heights ``>= ℓ`` come from storage.
        """
        self._check_leaf_index(index)
        siblings: list[bytes] = []

        if self.subtree_height > 0:
            subtree_index = index >> self.subtree_height
            subtree = self._rebuild_subtree(subtree_index)
            local = index & ((1 << self.subtree_height) - 1)
            node = local
            for height in range(self.subtree_height):
                siblings.append(subtree[height][node ^ 1])
                node >>= 1

        node = index >> self.subtree_height
        for height in range(self.subtree_height, self.height):
            row = self._stored[height]
            siblings.append(row[node ^ 1])
            node >>= 1

        return AuthenticationPath(
            leaf_index=index,
            siblings=siblings,
            n_leaves=self.n_leaves,
            leaf_encoding=self.leaf_encoding,
        )

    def __repr__(self) -> str:
        return (
            f"PartialMerkleTree(n_leaves={self.n_leaves}, height={self.height},"
            f" subtree_height={self.subtree_height},"
            f" stored_nodes={self.stored_node_count})"
        )
