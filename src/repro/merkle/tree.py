"""Full in-memory Merkle tree (paper §3.1, Eq. 1 and Fig. 1).

The participant builds a complete binary tree whose leaves carry the
computation results: ``Φ(L_i) = f(x_i)`` and
``Φ(V) = hash(Φ(V_left) || Φ(V_right))`` for internal nodes.  The root
digest ``Φ(R)`` is the commitment sent to the supervisor.

Two leaf encodings are supported (experiment E9 ablates them):

* ``LeafEncoding.HASHED`` (default) — ``Φ(L) = hash(0x00 || payload)``.
  This is the standard domain-separated encoding: it accommodates
  variable-length results and prevents leaf/internal-node confusion
  (second-preimage) attacks.
* ``LeafEncoding.RAW`` — ``Φ(L) = payload`` verbatim, exactly as the
  paper writes Eq. (1).  Requires every payload to already be
  ``digest_size`` bytes.

Domains whose size is not a power of two are padded with a
domain-separated empty-leaf digest (``hash(0x02 || "repro/empty")``);
padding leaves are structural only and are never sampled by any scheme.

For large domains the leaf level dominates build time, so this module
also provides *chunked* construction: :func:`chunked_root` splits the
(padded) leaf level into contiguous power-of-two chunks, has workers
build each chunk's subtree root independently (:func:`subtree_root` /
the picklable :func:`hash_leaf_chunk` job), and folds the chunk roots
into ``Φ(R)``.  Because a complete binary tree over the padded leaves
is exactly the fold of its aligned subtrees, the chunked root is
byte-identical to :attr:`MerkleTree.root` on every execution backend.

Proof *generation* parallelizes the same way: an authentication path
is a within-chunk sibling run followed by top-of-tree siblings over
the chunk roots, so :func:`chunked_proofs` has workers fold each
sampled chunk (:func:`prove_leaf_chunk`) and splices the serialized
top levels on — byte-identical to :meth:`MerkleTree.auth_path`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.exceptions import EmptyTreeError, LeafIndexError, MerkleError
from repro.merkle.hashing import HashFunction, get_hash
from repro.merkle.proof import AuthenticationPath
from repro.utils.bitmath import next_power_of_two, tree_height

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.executor import Executor

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"
_EMPTY_TAG = b"\x02repro/empty"


class LeafEncoding(enum.Enum):
    """How a leaf payload is mapped to its ``Φ`` value."""

    HASHED = "hashed"
    RAW = "raw"


def encode_leaf(
    payload: bytes, hash_fn: HashFunction, encoding: LeafEncoding
) -> bytes:
    """Compute ``Φ(L)`` for a leaf carrying ``payload``."""
    if encoding is LeafEncoding.RAW:
        if len(payload) != hash_fn.digest_size:
            raise MerkleError(
                "RAW leaf encoding requires payloads of digest size "
                f"{hash_fn.digest_size}, got {len(payload)} bytes"
            )
        return payload
    return hash_fn.digest(_LEAF_TAG + payload)


def empty_leaf_digest(hash_fn: HashFunction) -> bytes:
    """The ``Φ`` value used for structural padding leaves."""
    return hash_fn.digest(_EMPTY_TAG)


def combine(hash_fn: HashFunction, left: bytes, right: bytes) -> bytes:
    """Internal-node rule of Eq. (1): ``Φ(V) = hash(Φ(left) || Φ(right))``.

    A node tag is prepended for domain separation from leaf hashing;
    with ``LeafEncoding.RAW`` the tag is the only separator, exactly as
    strong as the paper's plain concatenation.
    """
    return hash_fn.digest(_NODE_TAG + left + right)


def combine_level(
    hash_fn: HashFunction, level: Sequence[bytes]
) -> list[bytes]:
    """Apply Eq. (1) to a whole even-width level in one batched call.

    Byte-identical to pairwise :func:`combine` over the level; the
    difference is one
    :meth:`~repro.merkle.hashing.HashFunction.tagged_digest_pairs`
    boundary instead of ``len(level) / 2`` per-digest Python call
    chains — the internal-node half of the batched-hashing hot path.
    """
    if len(level) % 2:
        raise MerkleError(
            f"level width must be even to combine, got {len(level)}"
        )
    return hash_fn.tagged_digest_pairs(_NODE_TAG, level)


def encode_leaves(
    payloads: Sequence[bytes],
    hash_fn: HashFunction,
    encoding: LeafEncoding = LeafEncoding.HASHED,
) -> list[bytes]:
    """``Φ`` values for many leaves through one batched hash call.

    Byte-identical to ``[encode_leaf(p, ...) for p in payloads]``; the
    leaf-level half of the batched hot path, shared by
    :func:`hash_leaves` and the streaming builder's ``add_leaves``.
    """
    if encoding is LeafEncoding.RAW:
        return [encode_leaf(payload, hash_fn, encoding) for payload in payloads]
    return hash_fn.tagged_digest_many(_LEAF_TAG, payloads)


def hash_leaves(
    payloads: Sequence[bytes],
    hash_fn: HashFunction,
    encoding: LeafEncoding = LeafEncoding.HASHED,
    n_padding: int = 0,
) -> list[bytes]:
    """``Φ`` values for a contiguous run of leaves, plus padding.

    The shared leaf-level primitive: :class:`MerkleTree` calls it once
    over the whole domain; the chunked builder calls it per chunk in
    pooled workers.
    """
    if n_padding < 0:
        raise MerkleError(f"n_padding must be >= 0, got {n_padding}")
    digests = encode_leaves(payloads, hash_fn, encoding)
    if n_padding:
        digests.extend([empty_leaf_digest(hash_fn)] * n_padding)
    return digests


def subtree_root(digests: Sequence[bytes], hash_fn: HashFunction) -> bytes:
    """Fold a power-of-two-wide digest level to its subtree root."""
    n = len(digests)
    if n == 0 or n & (n - 1):
        raise MerkleError(
            f"subtree width must be a positive power of two, got {n}"
        )
    level = list(digests)
    while len(level) > 1:
        level = combine_level(hash_fn, level)
    return level[0]


def hash_leaf_chunk(
    job: tuple[tuple[bytes, ...], int, str, str],
) -> bytes:
    """Worker-side chunk job: leaf payloads → subtree root.

    ``job`` is ``(payloads, n_padding, hash_name, encoding_value)`` —
    plain picklable values, so process-pool workers can rebuild the
    hash function locally instead of shipping it over IPC.
    """
    payloads, n_padding, hash_name, encoding_value = job
    hash_fn = get_hash(hash_name)
    digests = hash_leaves(
        payloads, hash_fn, LeafEncoding(encoding_value), n_padding=n_padding
    )
    return subtree_root(digests, hash_fn)


def chunked_root(
    payloads: Sequence[bytes],
    hash_name: str = "sha256",
    leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
    executor: "Executor | str | None" = None,
    chunk_size: int | None = None,
) -> bytes:
    """``Φ(R)`` via contiguous leaf chunks built as independent subtrees.

    The padded leaf level is cut into aligned power-of-two chunks; each
    chunk's subtree root is computed by :func:`hash_leaf_chunk` (on the
    given :class:`~repro.engine.executor.Executor`, engine name, or
    serially when ``executor`` is ``None``), and the roots are folded
    with the internal-node rule.  Byte-identical to
    ``MerkleTree(payloads, get_hash(hash_name), leaf_encoding).root``
    for every chunk size and backend.

    ``chunk_size`` must be a power of two; the default targets ~4
    chunks per worker, with a floor that keeps IPC overhead amortized.
    """
    from repro.engine.executor import resolved_executor

    n = len(payloads)
    if n == 0:
        raise EmptyTreeError("cannot build a Merkle tree over zero leaves")
    padded = next_power_of_two(n)
    with resolved_executor(executor if executor is not None else "serial") as exec_:
        if chunk_size is None:
            target_chunks = next_power_of_two(exec_.workers * 4)
            chunk_size = max(1024, padded // target_chunks)
        if chunk_size < 1 or chunk_size & (chunk_size - 1):
            raise MerkleError(
                f"chunk_size must be a positive power of two, got {chunk_size}"
            )
        chunk_size = min(chunk_size, padded)
        hash_fn = get_hash(hash_name)
        jobs = []
        for start in range(0, padded, chunk_size):
            chunk = tuple(payloads[start : min(start + chunk_size, n)])
            jobs.append(
                (chunk, chunk_size - len(chunk), hash_name, leaf_encoding.value)
            )
        roots = exec_.map(hash_leaf_chunk, jobs)
        return subtree_root(roots, hash_fn)


def _fold_levels(
    digests: Sequence[bytes], hash_fn: HashFunction
) -> list[list[bytes]]:
    """All levels of the fold of a power-of-two digest row, bottom first."""
    n = len(digests)
    if n == 0 or n & (n - 1):
        raise MerkleError(
            f"subtree width must be a positive power of two, got {n}"
        )
    levels = [list(digests)]
    while len(levels[-1]) > 1:
        levels.append(combine_level(hash_fn, levels[-1]))
    return levels


def _siblings_in_levels(levels: list[list[bytes]], index: int) -> list[bytes]:
    """Sibling digests for ``index``, leaf-upward, root level excluded."""
    siblings: list[bytes] = []
    node = index
    for level in levels[:-1]:
        siblings.append(level[node ^ 1])
        node >>= 1
    return siblings


def prove_leaf_chunk(
    job: tuple[tuple[bytes, ...], int, str, str, tuple[int, ...]],
) -> tuple[bytes, dict[int, list[bytes]]]:
    """Worker-side proof job: chunk root + within-chunk sibling runs.

    ``job`` is ``(payloads, n_padding, hash_name, encoding_value,
    local_indices)`` — picklable values, like :func:`hash_leaf_chunk`,
    plus the chunk-relative indices of the sampled leaves whose
    partial authentication paths this chunk must supply.
    """
    payloads, n_padding, hash_name, encoding_value, local_indices = job
    hash_fn = get_hash(hash_name)
    digests = hash_leaves(
        payloads, hash_fn, LeafEncoding(encoding_value), n_padding=n_padding
    )
    if not local_indices:
        # The dominant case at large domains: most chunks carry no
        # sampled leaf and only contribute their root to the top fold.
        return subtree_root(digests, hash_fn), {}
    levels = _fold_levels(digests, hash_fn)
    paths = {
        local: _siblings_in_levels(levels, local) for local in local_indices
    }
    return levels[-1][0], paths


def chunked_proofs(
    payloads: Sequence[bytes],
    indices: Sequence[int],
    hash_name: str = "sha256",
    leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
    executor: "Executor | str | None" = None,
    chunk_size: int | None = None,
) -> list[AuthenticationPath]:
    """Authentication paths for sampled leaves, built chunk-parallel.

    The proof-generation sibling of :func:`chunked_root`: the padded
    leaf level is cut into aligned power-of-two chunks, each chunk's
    subtree is folded by a worker (:func:`prove_leaf_chunk`) which
    also extracts the within-chunk sibling runs for the sampled leaves
    it contains, and the serial tail folds the chunk roots and splices
    the top-of-tree siblings on.  Paths are byte-identical to
    ``MerkleTree(payloads, ...).auth_path(i)`` for every chunk size
    and backend, in the order the indices were given (duplicates
    allowed — with-replacement challenges produce them).
    """
    from repro.engine.executor import resolved_executor

    n = len(payloads)
    if n == 0:
        raise EmptyTreeError("cannot build a Merkle tree over zero leaves")
    for index in indices:
        if not 0 <= index < n:
            raise LeafIndexError(f"leaf index {index} outside [0, {n})")
    padded = next_power_of_two(n)
    with resolved_executor(executor if executor is not None else "serial") as exec_:
        if chunk_size is None:
            target_chunks = next_power_of_two(exec_.workers * 4)
            chunk_size = max(1024, padded // target_chunks)
        if chunk_size < 1 or chunk_size & (chunk_size - 1):
            raise MerkleError(
                f"chunk_size must be a positive power of two, got {chunk_size}"
            )
        chunk_size = min(chunk_size, padded)
        hash_fn = get_hash(hash_name)

        wanted: dict[int, set[int]] = {}
        for index in indices:
            wanted.setdefault(index // chunk_size, set()).add(
                index % chunk_size
            )
        jobs = []
        for chunk_no, start in enumerate(range(0, padded, chunk_size)):
            chunk = tuple(payloads[start : min(start + chunk_size, n)])
            jobs.append(
                (
                    chunk,
                    chunk_size - len(chunk),
                    hash_name,
                    leaf_encoding.value,
                    tuple(sorted(wanted.get(chunk_no, ()))),
                )
            )
        results = exec_.map(prove_leaf_chunk, jobs)

    top_levels = _fold_levels([root for root, _paths in results], hash_fn)
    paths: list[AuthenticationPath] = []
    for index in indices:
        chunk_no, local = divmod(index, chunk_size)
        siblings = list(results[chunk_no][1][local])
        siblings.extend(_siblings_in_levels(top_levels, chunk_no))
        paths.append(
            AuthenticationPath(
                leaf_index=index,
                siblings=siblings,
                n_leaves=n,
                leaf_encoding=leaf_encoding,
            )
        )
    return paths


class MerkleTree:
    """A complete binary Merkle tree over a sequence of leaf payloads.

    Levels are stored root-first: ``_levels[0]`` is ``[Φ(R)]`` and
    ``_levels[H]`` is the padded leaf level, matching the paper's
    "root at level 0" convention (§3.3).

    Parameters
    ----------
    leaves:
        The leaf payloads, one per domain input, in domain order
        (payload ``i`` corresponds to ``f(x_i)``).
    hash_fn:
        Hash function (default SHA-256).
    leaf_encoding:
        See :class:`LeafEncoding`.
    """

    def __init__(
        self,
        leaves: Sequence[bytes] | Iterable[bytes],
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
    ) -> None:
        payloads = list(leaves)
        if not payloads:
            raise EmptyTreeError("cannot build a Merkle tree over zero leaves")
        self.hash_fn = hash_fn or get_hash("sha256")
        self.leaf_encoding = leaf_encoding
        self.n_leaves = len(payloads)
        self.height = tree_height(next_power_of_two(self.n_leaves))

        padded = next_power_of_two(self.n_leaves)
        leaf_level = hash_leaves(
            payloads,
            self.hash_fn,
            leaf_encoding,
            n_padding=padded - self.n_leaves,
        )

        levels: list[list[bytes]] = [leaf_level]
        current = leaf_level
        while len(current) > 1:
            parent = combine_level(self.hash_fn, current)
            levels.append(parent)
            current = parent
        levels.reverse()  # root first
        self._levels = levels

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> bytes:
        """The commitment ``Φ(R)``."""
        return self._levels[0][0]

    @property
    def n_padded_leaves(self) -> int:
        """Leaf-level width after power-of-two padding."""
        return len(self._levels[-1])

    @property
    def n_nodes(self) -> int:
        """Total number of nodes, including padding leaves."""
        return sum(len(level) for level in self._levels)

    def phi(self, level: int, index: int) -> bytes:
        """``Φ`` value of the node at ``(level, index)``; root is (0, 0)."""
        if not 0 <= level < len(self._levels):
            raise MerkleError(f"level {level} outside [0, {len(self._levels) - 1}]")
        row = self._levels[level]
        if not 0 <= index < len(row):
            raise MerkleError(f"index {index} outside level {level} of width {len(row)}")
        return row[index]

    def leaf_digest(self, index: int) -> bytes:
        """``Φ(L_index)`` for a real (non-padding) leaf."""
        self._check_leaf_index(index)
        return self._levels[-1][index]

    def _check_leaf_index(self, index: int) -> None:
        if not 0 <= index < self.n_leaves:
            raise LeafIndexError(
                f"leaf index {index} outside [0, {self.n_leaves})"
            )

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------

    def auth_path(self, index: int) -> AuthenticationPath:
        """Sibling digests ``λ1..λH`` along the path from leaf ``index``.

        This is the participant side of CBS Step 3: for each node ``v``
        on the leaf-to-root path (root excluded) send ``Φ(v's sibling)``
        (paper §3.1 and footnote 1).  Siblings are ordered leaf-upward.
        """
        self._check_leaf_index(index)
        siblings: list[bytes] = []
        node = index
        # Walk from the leaf level (last) up to level 1 (children of root).
        for level in range(len(self._levels) - 1, 0, -1):
            siblings.append(self._levels[level][node ^ 1])
            node >>= 1
        return AuthenticationPath(
            leaf_index=index,
            siblings=siblings,
            n_leaves=self.n_leaves,
            leaf_encoding=self.leaf_encoding,
        )

    def __len__(self) -> int:
        return self.n_leaves

    def __repr__(self) -> str:
        return (
            f"MerkleTree(n_leaves={self.n_leaves}, height={self.height},"
            f" hash={self.hash_fn.name}, root={self.root.hex()[:16]}...)"
        )
