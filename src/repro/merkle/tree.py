"""Full in-memory Merkle tree (paper §3.1, Eq. 1 and Fig. 1).

The participant builds a complete binary tree whose leaves carry the
computation results: ``Φ(L_i) = f(x_i)`` and
``Φ(V) = hash(Φ(V_left) || Φ(V_right))`` for internal nodes.  The root
digest ``Φ(R)`` is the commitment sent to the supervisor.

Two leaf encodings are supported (experiment E9 ablates them):

* ``LeafEncoding.HASHED`` (default) — ``Φ(L) = hash(0x00 || payload)``.
  This is the standard domain-separated encoding: it accommodates
  variable-length results and prevents leaf/internal-node confusion
  (second-preimage) attacks.
* ``LeafEncoding.RAW`` — ``Φ(L) = payload`` verbatim, exactly as the
  paper writes Eq. (1).  Requires every payload to already be
  ``digest_size`` bytes.

Domains whose size is not a power of two are padded with a
domain-separated empty-leaf digest (``hash(0x02 || "repro/empty")``);
padding leaves are structural only and are never sampled by any scheme.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence

from repro.exceptions import EmptyTreeError, LeafIndexError, MerkleError
from repro.merkle.hashing import HashFunction, get_hash
from repro.merkle.proof import AuthenticationPath
from repro.utils.bitmath import next_power_of_two, tree_height

_LEAF_TAG = b"\x00"
_NODE_TAG = b"\x01"
_EMPTY_TAG = b"\x02repro/empty"


class LeafEncoding(enum.Enum):
    """How a leaf payload is mapped to its ``Φ`` value."""

    HASHED = "hashed"
    RAW = "raw"


def encode_leaf(
    payload: bytes, hash_fn: HashFunction, encoding: LeafEncoding
) -> bytes:
    """Compute ``Φ(L)`` for a leaf carrying ``payload``."""
    if encoding is LeafEncoding.RAW:
        if len(payload) != hash_fn.digest_size:
            raise MerkleError(
                "RAW leaf encoding requires payloads of digest size "
                f"{hash_fn.digest_size}, got {len(payload)} bytes"
            )
        return payload
    return hash_fn.digest(_LEAF_TAG + payload)


def empty_leaf_digest(hash_fn: HashFunction) -> bytes:
    """The ``Φ`` value used for structural padding leaves."""
    return hash_fn.digest(_EMPTY_TAG)


def combine(hash_fn: HashFunction, left: bytes, right: bytes) -> bytes:
    """Internal-node rule of Eq. (1): ``Φ(V) = hash(Φ(left) || Φ(right))``.

    A node tag is prepended for domain separation from leaf hashing;
    with ``LeafEncoding.RAW`` the tag is the only separator, exactly as
    strong as the paper's plain concatenation.
    """
    return hash_fn.digest(_NODE_TAG + left + right)


class MerkleTree:
    """A complete binary Merkle tree over a sequence of leaf payloads.

    Levels are stored root-first: ``_levels[0]`` is ``[Φ(R)]`` and
    ``_levels[H]`` is the padded leaf level, matching the paper's
    "root at level 0" convention (§3.3).

    Parameters
    ----------
    leaves:
        The leaf payloads, one per domain input, in domain order
        (payload ``i`` corresponds to ``f(x_i)``).
    hash_fn:
        Hash function (default SHA-256).
    leaf_encoding:
        See :class:`LeafEncoding`.
    """

    def __init__(
        self,
        leaves: Sequence[bytes] | Iterable[bytes],
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
    ) -> None:
        payloads = list(leaves)
        if not payloads:
            raise EmptyTreeError("cannot build a Merkle tree over zero leaves")
        self.hash_fn = hash_fn or get_hash("sha256")
        self.leaf_encoding = leaf_encoding
        self.n_leaves = len(payloads)
        self.height = tree_height(next_power_of_two(self.n_leaves))

        padded = next_power_of_two(self.n_leaves)
        leaf_level = [
            encode_leaf(payload, self.hash_fn, leaf_encoding) for payload in payloads
        ]
        if padded > self.n_leaves:
            pad = empty_leaf_digest(self.hash_fn)
            leaf_level.extend([pad] * (padded - self.n_leaves))

        levels: list[list[bytes]] = [leaf_level]
        current = leaf_level
        while len(current) > 1:
            parent = [
                combine(self.hash_fn, current[i], current[i + 1])
                for i in range(0, len(current), 2)
            ]
            levels.append(parent)
            current = parent
        levels.reverse()  # root first
        self._levels = levels

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def root(self) -> bytes:
        """The commitment ``Φ(R)``."""
        return self._levels[0][0]

    @property
    def n_padded_leaves(self) -> int:
        """Leaf-level width after power-of-two padding."""
        return len(self._levels[-1])

    @property
    def n_nodes(self) -> int:
        """Total number of nodes, including padding leaves."""
        return sum(len(level) for level in self._levels)

    def phi(self, level: int, index: int) -> bytes:
        """``Φ`` value of the node at ``(level, index)``; root is (0, 0)."""
        if not 0 <= level < len(self._levels):
            raise MerkleError(f"level {level} outside [0, {len(self._levels) - 1}]")
        row = self._levels[level]
        if not 0 <= index < len(row):
            raise MerkleError(f"index {index} outside level {level} of width {len(row)}")
        return row[index]

    def leaf_digest(self, index: int) -> bytes:
        """``Φ(L_index)`` for a real (non-padding) leaf."""
        self._check_leaf_index(index)
        return self._levels[-1][index]

    def _check_leaf_index(self, index: int) -> None:
        if not 0 <= index < self.n_leaves:
            raise LeafIndexError(
                f"leaf index {index} outside [0, {self.n_leaves})"
            )

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------

    def auth_path(self, index: int) -> AuthenticationPath:
        """Sibling digests ``λ1..λH`` along the path from leaf ``index``.

        This is the participant side of CBS Step 3: for each node ``v``
        on the leaf-to-root path (root excluded) send ``Φ(v's sibling)``
        (paper §3.1 and footnote 1).  Siblings are ordered leaf-upward.
        """
        self._check_leaf_index(index)
        siblings: list[bytes] = []
        node = index
        # Walk from the leaf level (last) up to level 1 (children of root).
        for level in range(len(self._levels) - 1, 0, -1):
            siblings.append(self._levels[level][node ^ 1])
            node >>= 1
        return AuthenticationPath(
            leaf_index=index,
            siblings=siblings,
            n_leaves=self.n_leaves,
            leaf_encoding=self.leaf_encoding,
        )

    def __len__(self) -> int:
        return self.n_leaves

    def __repr__(self) -> str:
        return (
            f"MerkleTree(n_leaves={self.n_leaves}, height={self.height},"
            f" hash={self.hash_fn.name}, root={self.root.hex()[:16]}...)"
        )
