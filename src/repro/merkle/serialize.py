"""Wire serialization of Merkle artefacts.

Used by :mod:`repro.core.protocol` to turn commitments and proofs into
concrete byte strings so the simulated network can account real sizes
(experiment E3: the ``O(n)`` vs ``O(m log n)`` communication claim).
"""

from __future__ import annotations

from repro.exceptions import CodecError
from repro.merkle.proof import AuthenticationPath
from repro.merkle.tree import LeafEncoding
from repro.utils.encoding import (
    encode_bytes,
    encode_bytes_list,
    encode_uint,
    read_bytes,
    read_bytes_list,
    read_uint,
)

_ENCODING_CODES = {LeafEncoding.HASHED: 0, LeafEncoding.RAW: 1}
_ENCODING_FROM_CODE = {code: enc for enc, code in _ENCODING_CODES.items()}


def encode_auth_path(path: AuthenticationPath) -> bytes:
    """Serialize an authentication path."""
    encoding = path.leaf_encoding or LeafEncoding.HASHED
    out = bytearray()
    out += encode_uint(path.leaf_index)
    out += encode_uint(path.n_leaves)
    out += encode_uint(_ENCODING_CODES[encoding])
    out += encode_bytes_list(list(path.siblings))
    return bytes(out)


def decode_auth_path(data: bytes, offset: int = 0) -> tuple[AuthenticationPath, int]:
    """Deserialize an authentication path at ``offset``."""
    leaf_index, pos = read_uint(data, offset)
    n_leaves, pos = read_uint(data, pos)
    code, pos = read_uint(data, pos)
    if code not in _ENCODING_FROM_CODE:
        raise CodecError(f"unknown leaf-encoding code {code}")
    siblings, pos = read_bytes_list(data, pos)
    path = AuthenticationPath(
        leaf_index=leaf_index,
        siblings=siblings,
        n_leaves=n_leaves,
        leaf_encoding=_ENCODING_FROM_CODE[code],
    )
    return path, pos


def encode_digest(digest: bytes) -> bytes:
    """Serialize a single digest (length-prefixed)."""
    return encode_bytes(digest)


def decode_digest(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Deserialize a digest at ``offset``."""
    return read_bytes(data, offset)
