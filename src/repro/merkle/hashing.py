"""Hash-function registry for the Merkle substrate.

The paper treats the hash as a pluggable one-way primitive ("such as
MD5 or SHA", §3.1) and §4.2 constructs a *deliberately expensive* hash
``g ≡ (MD5)^k`` to price the NI-CBS regrinding attack out of
profitability (Eq. 5).  This module provides:

* :class:`HashFunction` — a named wrapper over a ``bytes -> bytes``
  digest with an abstract *cost* (in cost units, see
  :mod:`repro.grid.accounting`) so analyses can reason about ``C_g``
  without wall-clock noise.
* :class:`IteratedHash` — ``g = h^k``; cost scales linearly with ``k``.
* :class:`CountingHash` — a decorator that charges each invocation to a
  :class:`~repro.grid.accounting.CostLedger`.
* :func:`get_hash` — registry lookup (``sha256`` default; ``md5`` and
  ``sha1`` retained for paper fidelity, ``blake2b`` for the ablation
  experiment E9).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol

from repro.exceptions import ReproError


class SupportsDigest(Protocol):
    """Structural type for anything usable as a Merkle hash."""

    name: str
    digest_size: int

    def digest(self, data: bytes) -> bytes: ...  # pragma: no cover


class HashFunction:
    """A named one-way hash with a fixed digest size and abstract cost.

    Parameters
    ----------
    name:
        Registry name (e.g. ``"sha256"``).
    fn:
        The raw ``bytes -> bytes`` digest function.
    digest_size:
        Output size in bytes.
    cost:
        Abstract cost of one invocation, in the same units used for
        ``C_f`` by :class:`repro.tasks.function.TaskFunction`.  Defaults
        to 1.0; the iterated hash multiplies this by its round count.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[bytes], bytes],
        digest_size: int,
        cost: float = 1.0,
    ) -> None:
        if digest_size <= 0:
            raise ReproError(f"digest_size must be positive, got {digest_size}")
        if cost < 0:
            raise ReproError(f"cost must be non-negative, got {cost}")
        self.name = name
        self._fn = fn
        self.digest_size = digest_size
        self.cost = cost

    def digest(self, data: bytes) -> bytes:
        """Hash ``data`` and return the digest."""
        return self._fn(data)

    def __call__(self, data: bytes) -> bytes:
        return self.digest(data)

    def __repr__(self) -> str:
        return (
            f"HashFunction(name={self.name!r}, digest_size={self.digest_size},"
            f" cost={self.cost})"
        )


class IteratedHash(HashFunction):
    """``g = h^k``: apply a base hash ``k`` times (paper §4.2).

    NI-CBS derives sample indices from ``g^k(Φ(R))``; to defeat the
    regrinding attack the paper makes ``g`` itself expensive by
    iterating a fast hash.  The abstract cost is ``k × base.cost`` so
    Eq. (5) can be evaluated directly from the objects.
    """

    def __init__(self, base: HashFunction, rounds: int) -> None:
        if rounds < 1:
            raise ReproError(f"rounds must be >= 1, got {rounds}")
        self.base = base
        self.rounds = rounds
        super().__init__(
            name=f"{base.name}^{rounds}",
            fn=self._iterate,
            digest_size=base.digest_size,
            cost=base.cost * rounds,
        )

    def _iterate(self, data: bytes) -> bytes:
        digest = data
        for _ in range(self.rounds):
            digest = self.base.digest(digest)
        return digest


class CountingHash(HashFunction):
    """Wrap a hash so every invocation is charged to a ledger.

    The ledger interface is duck-typed (`charge_hash(cost)`) to avoid a
    circular import with :mod:`repro.grid.accounting`.
    """

    def __init__(self, inner: HashFunction, ledger) -> None:
        self.inner = inner
        self.ledger = ledger
        super().__init__(
            name=inner.name,
            fn=self._counted,
            digest_size=inner.digest_size,
            cost=inner.cost,
        )

    def _counted(self, data: bytes) -> bytes:
        self.ledger.charge_hash(self.inner.cost)
        return self.inner.digest(data)


def _stdlib(name: str) -> Callable[[bytes], bytes]:
    def fn(data: bytes) -> bytes:
        return hashlib.new(name, data).digest()

    return fn


_REGISTRY: dict[str, HashFunction] = {
    "sha256": HashFunction("sha256", _stdlib("sha256"), 32),
    "sha1": HashFunction("sha1", _stdlib("sha1"), 20),
    "md5": HashFunction("md5", _stdlib("md5"), 16),
    "blake2b": HashFunction(
        "blake2b", lambda data: hashlib.blake2b(data, digest_size=32).digest(), 32
    ),
    "sha512": HashFunction("sha512", _stdlib("sha512"), 64),
}


def available_hashes() -> list[str]:
    """Names of all registered hash functions."""
    return sorted(_REGISTRY)


def get_hash(name: str = "sha256") -> HashFunction:
    """Look up a registered hash function by name.

    ``"<base>^<k>"`` names (e.g. ``"md5^1000"``) build an
    :class:`IteratedHash` on the fly, mirroring the paper's
    ``g ≡ (MD5)^k`` construction.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]
    if "^" in name:
        base_name, _, rounds_text = name.partition("^")
        if base_name in _REGISTRY and rounds_text.isdigit():
            return IteratedHash(_REGISTRY[base_name], int(rounds_text))
    raise ReproError(
        f"unknown hash {name!r}; available: {', '.join(available_hashes())}"
    )


def register_hash(fn: HashFunction) -> None:
    """Add a custom hash to the registry (used by tests and ablations)."""
    _REGISTRY[fn.name] = fn
