"""Hash-function registry for the Merkle substrate.

The paper treats the hash as a pluggable one-way primitive ("such as
MD5 or SHA", §3.1) and §4.2 constructs a *deliberately expensive* hash
``g ≡ (MD5)^k`` to price the NI-CBS regrinding attack out of
profitability (Eq. 5).  This module provides:

* :class:`HashFunction` — a named wrapper over a ``bytes -> bytes``
  digest with an abstract *cost* (in cost units, see
  :mod:`repro.grid.accounting`) so analyses can reason about ``C_g``
  without wall-clock noise.
* :class:`IteratedHash` — ``g = h^k``; cost scales linearly with ``k``.
* :class:`CountingHash` — a decorator that charges each invocation to a
  :class:`~repro.grid.accounting.CostLedger`.
* :func:`get_hash` — registry lookup (``sha256`` default; ``md5`` and
  ``sha1`` retained for paper fidelity, ``blake2b`` for the ablation
  experiment E9).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol, Sequence

from repro.exceptions import ReproError


class SupportsDigest(Protocol):
    """Structural type for anything usable as a Merkle hash."""

    name: str
    digest_size: int

    def digest(self, data: bytes) -> bytes: ...  # pragma: no cover


class HashFunction:
    """A named one-way hash with a fixed digest size and abstract cost.

    Parameters
    ----------
    name:
        Registry name (e.g. ``"sha256"``).
    fn:
        The raw ``bytes -> bytes`` digest function.
    digest_size:
        Output size in bytes.
    cost:
        Abstract cost of one invocation, in the same units used for
        ``C_f`` by :class:`repro.tasks.function.TaskFunction`.  Defaults
        to 1.0; the iterated hash multiplies this by its round count.
    hasher_factory:
        Optional ``hashlib``-style constructor (``factory(data=b"")``
        returns an object with ``copy``/``update``/``digest``).  When
        present, the batched methods below hash whole levels through
        cached, pre-seeded hasher objects instead of one Python call
        chain per digest — the Merkle hot path.  The registry's stdlib
        entries all carry one; wrapper classes compose without it.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[bytes], bytes],
        digest_size: int,
        cost: float = 1.0,
        hasher_factory: Callable[..., "hashlib._Hash"] | None = None,
    ) -> None:
        if digest_size <= 0:
            raise ReproError(f"digest_size must be positive, got {digest_size}")
        if cost < 0:
            raise ReproError(f"cost must be non-negative, got {cost}")
        self.name = name
        self._fn = fn
        self._factory = hasher_factory
        self.digest_size = digest_size
        self.cost = cost

    def digest(self, data: bytes) -> bytes:
        """Hash ``data`` and return the digest."""
        return self._fn(data)

    # ------------------------------------------------------------------
    # Batched digests — the Merkle builders' call boundary.
    #
    # All three methods are byte-identical to their per-digest loops;
    # registry entries dispatch through a cached constructor (and, for
    # the tagged forms, a pre-seeded hasher copied per item, skipping
    # the ``tag + blob`` concatenation), while wrappers
    # (:class:`IteratedHash`, :class:`CountingHash`) override them to
    # preserve their semantics — so every composition still works and
    # only the Python-call overhead changes.
    # ------------------------------------------------------------------

    def digest_many(self, blobs: Sequence[bytes]) -> list[bytes]:
        """Hash many blobs in one call; equals ``[digest(b) for b in blobs]``."""
        factory = self._factory
        if factory is not None:
            return [factory(blob).digest() for blob in blobs]
        fn = self._fn
        return [fn(blob) for blob in blobs]

    def tagged_digest_many(
        self, tag: bytes, blobs: Sequence[bytes]
    ) -> list[bytes]:
        """``[digest(tag + b) for b in blobs]`` without per-item concats.

        The leaf-level hot path: the domain-separation tag is absorbed
        into one seeded hasher, copied per blob.
        """
        factory = self._factory
        if factory is None:
            return self.digest_many([tag + blob for blob in blobs])
        copy = factory(tag).copy
        # ``update`` returns None, so ``or`` chains it into the
        # comprehension — measurably faster than an append loop.
        return [
            (hasher := copy()).update(blob) or hasher.digest()
            for blob in blobs
        ]

    def tagged_digest_pairs(
        self, tag: bytes, level: Sequence[bytes]
    ) -> list[bytes]:
        """``[digest(tag + level[i] + level[i+1]) for even i]`` batched.

        The internal-node hot path: consecutive pairs of an even-width
        digest level are combined without materialising the
        ``tag || left || right`` concatenations.
        """
        factory = self._factory
        if factory is None:
            pairs = iter(level)
            return self.digest_many(
                [tag + left + right for left, right in zip(pairs, pairs)]
            )
        copy = factory(tag).copy
        pairs = iter(level)
        return [
            (hasher := copy()).update(left)
            or hasher.update(right)
            or hasher.digest()
            for left, right in zip(pairs, pairs)
        ]

    def __call__(self, data: bytes) -> bytes:
        return self.digest(data)

    def __repr__(self) -> str:
        return (
            f"HashFunction(name={self.name!r}, digest_size={self.digest_size},"
            f" cost={self.cost})"
        )


class IteratedHash(HashFunction):
    """``g = h^k``: apply a base hash ``k`` times (paper §4.2).

    NI-CBS derives sample indices from ``g^k(Φ(R))``; to defeat the
    regrinding attack the paper makes ``g`` itself expensive by
    iterating a fast hash.  The abstract cost is ``k × base.cost`` so
    Eq. (5) can be evaluated directly from the objects.
    """

    def __init__(self, base: HashFunction, rounds: int) -> None:
        if rounds < 1:
            raise ReproError(f"rounds must be >= 1, got {rounds}")
        self.base = base
        self.rounds = rounds
        super().__init__(
            name=f"{base.name}^{rounds}",
            fn=self._iterate,
            digest_size=base.digest_size,
            cost=base.cost * rounds,
        )

    def _iterate(self, data: bytes) -> bytes:
        digest = data
        for _ in range(self.rounds):
            digest = self.base.digest(digest)
        return digest

    def digest_many(self, blobs: Sequence[bytes]) -> list[bytes]:
        """Batched iteration: ``k`` level-wide passes over the base hash."""
        digests = blobs if isinstance(blobs, list) else list(blobs)
        for _ in range(self.rounds):
            digests = self.base.digest_many(digests)
        return digests

    def tagged_digest_many(
        self, tag: bytes, blobs: Sequence[bytes]
    ) -> list[bytes]:
        digests = self.base.tagged_digest_many(tag, blobs)
        for _ in range(self.rounds - 1):
            digests = self.base.digest_many(digests)
        return digests

    def tagged_digest_pairs(
        self, tag: bytes, level: Sequence[bytes]
    ) -> list[bytes]:
        digests = self.base.tagged_digest_pairs(tag, level)
        for _ in range(self.rounds - 1):
            digests = self.base.digest_many(digests)
        return digests


class CountingHash(HashFunction):
    """Wrap a hash so every invocation is charged to a ledger.

    The ledger interface is duck-typed (`charge_hash(cost)`) to avoid a
    circular import with :mod:`repro.grid.accounting`.
    """

    def __init__(self, inner: HashFunction, ledger) -> None:
        self.inner = inner
        self.ledger = ledger
        super().__init__(
            name=inner.name,
            fn=self._counted,
            digest_size=inner.digest_size,
            cost=inner.cost,
        )

    def _counted(self, data: bytes) -> bytes:
        self.ledger.charge_hash(self.inner.cost)
        return self.inner.digest(data)

    def digest_many(self, blobs: Sequence[bytes]) -> list[bytes]:
        """Batched digests with per-invocation ledger charges preserved."""
        blobs = blobs if isinstance(blobs, list) else list(blobs)
        self._charge_each(blobs)
        return self.inner.digest_many(blobs)

    def tagged_digest_many(
        self, tag: bytes, blobs: Sequence[bytes]
    ) -> list[bytes]:
        blobs = blobs if isinstance(blobs, list) else list(blobs)
        self._charge_each(blobs)
        return self.inner.tagged_digest_many(tag, blobs)

    def tagged_digest_pairs(
        self, tag: bytes, level: Sequence[bytes]
    ) -> list[bytes]:
        charge, cost = self.ledger.charge_hash, self.inner.cost
        for _ in range(len(level) // 2):
            charge(cost)
        return self.inner.tagged_digest_pairs(tag, level)

    def _charge_each(self, blobs: Sequence[bytes]) -> None:
        charge, cost = self.ledger.charge_hash, self.inner.cost
        for _ in blobs:
            charge(cost)


def _stdlib(name: str) -> HashFunction:
    """Registry entry over a *bound* ``hashlib`` constructor.

    ``hashlib.new(name, data)`` resolves the algorithm by string on
    every call; caching the constructor once at registry construction
    removes that lookup from every leaf and internal-node digest, and
    exposing the constructor as ``hasher_factory`` unlocks the
    pre-seeded batched paths.
    """
    ctor = getattr(hashlib, name)

    def fn(data: bytes, _ctor=ctor) -> bytes:
        return _ctor(data).digest()

    return HashFunction(
        name, fn, ctor(b"").digest_size, hasher_factory=ctor
    )


def _blake2b_32() -> HashFunction:
    def ctor(data: bytes = b"", _b2=hashlib.blake2b):
        return _b2(data, digest_size=32)

    def fn(data: bytes, _ctor=ctor) -> bytes:
        return _ctor(data).digest()

    return HashFunction("blake2b", fn, 32, hasher_factory=ctor)


_REGISTRY: dict[str, HashFunction] = {
    "sha256": _stdlib("sha256"),
    "sha1": _stdlib("sha1"),
    "md5": _stdlib("md5"),
    "blake2b": _blake2b_32(),
    "sha512": _stdlib("sha512"),
}


def available_hashes() -> list[str]:
    """Names of all registered hash functions."""
    return sorted(_REGISTRY)


def get_hash(name: str = "sha256") -> HashFunction:
    """Look up a registered hash function by name.

    ``"<base>^<k>"`` names (e.g. ``"md5^1000"``) build an
    :class:`IteratedHash` on the fly, mirroring the paper's
    ``g ≡ (MD5)^k`` construction.
    """
    if name in _REGISTRY:
        return _REGISTRY[name]
    if "^" in name:
        base_name, _, rounds_text = name.partition("^")
        if base_name in _REGISTRY and rounds_text.isdigit():
            return IteratedHash(_REGISTRY[base_name], int(rounds_text))
    raise ReproError(
        f"unknown hash {name!r}; available: {', '.join(available_hashes())}"
    )


def register_hash(fn: HashFunction) -> None:
    """Add a custom hash to the registry (used by tests and ablations)."""
    _REGISTRY[fn.name] = fn
