"""Authentication paths and root reconstruction (paper §3.1–3.2).

The supervisor verifies a sample ``x`` by recomputing the root from the
claimed ``f(x)`` and the sibling digests ``λ1..λH`` supplied by the
participant — the procedure the paper denotes
``Λ(Φ(L), λ1, ..., λH) = Φ(R)`` (Theorem 1/2).  Only if the
reconstructed root equals the committed root does the supervisor accept
that the participant knew ``f(x)`` *before* committing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ProofShapeError
from repro.merkle import hashing


def compute_root_from_path(
    leaf_phi: bytes,
    leaf_index: int,
    siblings: list[bytes],
    hash_fn: "hashing.HashFunction",
) -> bytes:
    """Reconstruct ``Φ(R')`` from a leaf ``Φ`` value and its siblings.

    This is ``Λ(Φ(L), λ1..λH)``: starting at the leaf, combine with each
    sibling in leaf-to-root order; the bit ``j`` of ``leaf_index``
    determines whether the running digest is the left or right child at
    level ``H − j``.
    """
    from repro.merkle.tree import combine  # local import: avoid cycle

    digest = leaf_phi
    node = leaf_index
    for sibling in siblings:
        if node & 1:
            digest = combine(hash_fn, sibling, digest)
        else:
            digest = combine(hash_fn, digest, sibling)
        node >>= 1
    return digest


@dataclass(frozen=True)
class AuthenticationPath:
    """The ``λ1..λH`` sibling digests proving one leaf against a root.

    Attributes
    ----------
    leaf_index:
        0-based index of the proven leaf within the domain.
    siblings:
        Sibling ``Φ`` values in leaf-to-root order (length = tree height).
    n_leaves:
        Number of real (non-padding) leaves, kept for sanity checks.
    leaf_encoding:
        The tree's leaf encoding, needed to recompute ``Φ(L)`` from the
        claimed result payload.
    """

    leaf_index: int
    siblings: list[bytes] = field(default_factory=list)
    n_leaves: int = 0
    leaf_encoding: "object" = None  # LeafEncoding; kept loose to avoid cycle

    def __post_init__(self) -> None:
        if self.leaf_index < 0:
            raise ProofShapeError(f"negative leaf index {self.leaf_index}")
        if self.n_leaves and self.leaf_index >= self.n_leaves:
            raise ProofShapeError(
                f"leaf index {self.leaf_index} outside [0, {self.n_leaves})"
            )
        sizes = {len(s) for s in self.siblings}
        if len(sizes) > 1:
            raise ProofShapeError(f"inconsistent sibling digest sizes: {sizes}")

    @property
    def height(self) -> int:
        """Path length ``H`` (number of sibling digests)."""
        return len(self.siblings)

    def root_from_payload(
        self, payload: bytes, hash_fn: "hashing.HashFunction"
    ) -> bytes:
        """Reconstruct the root from a claimed leaf *payload* (``f(x)``)."""
        from repro.merkle.tree import LeafEncoding, encode_leaf

        encoding = self.leaf_encoding or LeafEncoding.HASHED
        leaf_phi = encode_leaf(payload, hash_fn, encoding)
        return self.root_from_phi(leaf_phi, hash_fn)

    def root_from_phi(
        self, leaf_phi: bytes, hash_fn: "hashing.HashFunction"
    ) -> bytes:
        """Reconstruct the root from an already-encoded leaf ``Φ`` value."""
        return compute_root_from_path(
            leaf_phi, self.leaf_index, list(self.siblings), hash_fn
        )

    def verify(
        self,
        payload: bytes,
        expected_root: bytes,
        hash_fn: "hashing.HashFunction",
    ) -> bool:
        """Check whether ``payload`` at ``leaf_index`` matches ``expected_root``."""
        return self.root_from_payload(payload, hash_fn) == expected_root

    def wire_size(self) -> int:
        """Approximate serialized size in bytes (see serialize module)."""
        from repro.merkle.serialize import encode_auth_path

        return len(encode_auth_path(self))
