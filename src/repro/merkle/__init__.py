"""Merkle-tree substrate for Commitment-Based Sampling (paper §3.1).

The participant commits to all ``n`` results with a single root digest
``Φ(R)``; each sampled result is then proven with an ``O(log n)``
authentication path (the ``Φ`` values of the siblings along the
leaf-to-root path — Fig. 1 of the paper).

Public surface:

* :class:`~repro.merkle.hashing.HashFunction` and
  :func:`~repro.merkle.hashing.get_hash` — pluggable hash registry,
  including :class:`~repro.merkle.hashing.IteratedHash` (``g = h^k``,
  the deliberately slow hash of paper §4.2 / Eq. 5).
* :class:`~repro.merkle.tree.MerkleTree` — full in-memory tree.
* :class:`~repro.merkle.partial.PartialMerkleTree` — the §3.3
  storage-optimized tree (top ``H − ℓ`` levels stored, height-``ℓ``
  subtrees rebuilt on demand).
* :class:`~repro.merkle.streaming.StreamingMerkleBuilder` —
  ``O(log n)``-memory root computation.
* :class:`~repro.merkle.proof.AuthenticationPath` — the ``λ1..λH``
  sibling digests plus the root-reconstruction procedure
  ``Λ(f(x), λ1..λH)`` used by the supervisor.
* :func:`~repro.merkle.tree.chunked_root` — parallel root
  construction: contiguous leaf chunks become independent subtree
  builds (dispatchable on any :mod:`repro.engine` backend) whose roots
  fold to the identical ``Φ(R)``.
* :func:`~repro.merkle.tree.chunked_proofs` — parallel proof
  generation for sampled leaves, same chunk decomposition, paths
  byte-identical to :meth:`~repro.merkle.tree.MerkleTree.auth_path`.
"""

from repro.merkle.hashing import (
    CountingHash,
    HashFunction,
    IteratedHash,
    available_hashes,
    get_hash,
)
from repro.merkle.multiproof import MerkleMultiProof, build_multiproof
from repro.merkle.partial import PartialMerkleTree
from repro.merkle.proof import AuthenticationPath, compute_root_from_path
from repro.merkle.streaming import StreamingMerkleBuilder
from repro.merkle.tree import (
    LeafEncoding,
    MerkleTree,
    chunked_proofs,
    chunked_root,
    combine_level,
    encode_leaf,
    encode_leaves,
    hash_leaves,
    subtree_root,
)

__all__ = [
    "chunked_root",
    "chunked_proofs",
    "hash_leaves",
    "subtree_root",
    "combine_level",
    "encode_leaves",
    "HashFunction",
    "IteratedHash",
    "CountingHash",
    "get_hash",
    "available_hashes",
    "MerkleTree",
    "LeafEncoding",
    "encode_leaf",
    "PartialMerkleTree",
    "StreamingMerkleBuilder",
    "AuthenticationPath",
    "compute_root_from_path",
    "MerkleMultiProof",
    "build_multiproof",
]
