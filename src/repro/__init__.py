"""repro — a reproduction of *Uncheatable Grid Computing* (Du et al., ICDCS 2004).

The package implements the paper's Commitment-Based Sampling (CBS)
scheme — Merkle-tree commitments plus random sampling that let a grid
supervisor verify, with ``O(m log n)`` communication, that an untrusted
participant really evaluated ``f`` over its whole input domain — along
with the non-interactive variant (NI-CBS), the §3.3 storage
optimization, the baseline schemes the paper positions itself against
(double-checking, naive sampling, Golle–Mironov ringers, Szajda-style
hardening), adversary models, a grid simulator with byte-accurate cost
accounting, and the closed-form analyses (Eq. 2/3/5, Fig. 2, rco).

Quickstart::

    from repro import (
        CBSScheme, HonestBehavior, SemiHonestCheater,
        PasswordSearch, RangeDomain, TaskAssignment,
    )

    task = TaskAssignment("job-0", RangeDomain(0, 1 << 16), PasswordSearch())
    scheme = CBSScheme(n_samples=20)

    honest = scheme.run(task, HonestBehavior(), seed=7)
    assert honest.outcome.accepted                 # Theorem 1 (soundness)

    lazy = scheme.run(task, SemiHonestCheater(honesty_ratio=0.5), seed=7)
    assert not lazy.outcome.accepted               # caught w.p. 1 - 0.5^20

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
per-figure reproduction harnesses (indexed in DESIGN.md §4).
"""

from repro._version import __version__
from repro.accounting import CostLedger
from repro.analysis import (
    cheat_success_probability,
    detection_probability,
    fig2_series,
    required_sample_size,
)
from repro.baselines import (
    DoubleCheckScheme,
    HardenedProbeScheme,
    NaiveSamplingScheme,
    RingerScheme,
)
from repro.cheating import (
    Behavior,
    BernoulliGuess,
    ColludingCheater,
    GuessModel,
    HonestBehavior,
    MaliciousBehavior,
    SemiHonestCheater,
    UniformValueGuess,
    ZeroGuess,
)
from repro.core import (
    CBSParticipant,
    CBSScheme,
    CBSSupervisor,
    NICBSParticipant,
    NICBSScheme,
    NICBSSupervisor,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.engine import (
    Executor,
    ProcessPoolExecutor,
    SchemeJob,
    SerialExecutor,
    ThreadPoolExecutor,
    derive_seed,
    get_executor,
    run_scheme_jobs,
)
from repro.grid import (
    DetectionReport,
    GridResourceBroker,
    GridSimulation,
    Network,
    ParticipantNode,
    SimulationConfig,
    SupervisorNode,
    run_population,
)
from repro.merkle import (
    AuthenticationPath,
    HashFunction,
    IteratedHash,
    MerkleTree,
    PartialMerkleTree,
    StreamingMerkleBuilder,
    chunked_root,
    get_hash,
)
from repro.tasks import (
    Domain,
    ExplicitDomain,
    FactoringTask,
    MatchScreener,
    MersenneCheck,
    MoleculeScreening,
    MonteCarloEstimate,
    OptimizationSearch,
    PasswordSearch,
    RangeDomain,
    SignalSearch,
    TaskAssignment,
    TaskFunction,
    ThresholdScreener,
    TopKScreener,
)

__all__ = [
    "__version__",
    # accounting
    "CostLedger",
    # analysis
    "cheat_success_probability",
    "detection_probability",
    "required_sample_size",
    "fig2_series",
    # baselines
    "DoubleCheckScheme",
    "NaiveSamplingScheme",
    "RingerScheme",
    "HardenedProbeScheme",
    # cheating
    "Behavior",
    "HonestBehavior",
    "SemiHonestCheater",
    "ColludingCheater",
    "MaliciousBehavior",
    "GuessModel",
    "ZeroGuess",
    "BernoulliGuess",
    "UniformValueGuess",
    # core
    "CBSScheme",
    "CBSParticipant",
    "CBSSupervisor",
    "NICBSScheme",
    "NICBSParticipant",
    "NICBSSupervisor",
    "VerificationScheme",
    "VerificationOutcome",
    "SchemeRunResult",
    # engine
    "Executor",
    "SerialExecutor",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "get_executor",
    "derive_seed",
    "SchemeJob",
    "run_scheme_jobs",
    # grid
    "Network",
    "ParticipantNode",
    "SupervisorNode",
    "GridResourceBroker",
    "GridSimulation",
    "SimulationConfig",
    "DetectionReport",
    "run_population",
    # merkle
    "MerkleTree",
    "chunked_root",
    "PartialMerkleTree",
    "StreamingMerkleBuilder",
    "AuthenticationPath",
    "HashFunction",
    "IteratedHash",
    "get_hash",
    # tasks
    "Domain",
    "RangeDomain",
    "ExplicitDomain",
    "TaskAssignment",
    "TaskFunction",
    "PasswordSearch",
    "FactoringTask",
    "MoleculeScreening",
    "SignalSearch",
    "MersenneCheck",
    "MonteCarloEstimate",
    "OptimizationSearch",
    "MatchScreener",
    "ThresholdScreener",
    "TopKScreener",
]
