"""Uniform scheme interface and verification outcomes.

Every verification scheme — CBS, NI-CBS, and the baselines — implements
:class:`VerificationScheme`, so the grid simulator and the comparison
experiments can drive them interchangeably.  A scheme run produces a
:class:`SchemeRunResult` bundling the supervisor's verdict with both
sides' cost ledgers and the ground-truth work record (which the
supervisor, of course, never sees).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.cheating.strategies import Behavior, ComputedWork
from repro.accounting import CostLedger
from repro.tasks.result import TaskAssignment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.engine.jobs import SchemeJob


class RejectReason(enum.Enum):
    """Why a sample (or a whole run) was rejected."""

    OK = "ok"
    WRONG_RESULT = "wrong_result"          # claimed f(x) fails verification
    ROOT_MISMATCH = "root_mismatch"        # Λ(f(x), λ...) != Φ(R)
    MALFORMED_PROOF = "malformed_proof"    # wrong index/shape/length
    SAMPLE_MISMATCH = "sample_mismatch"    # NI-CBS indices not derived from root
    MISSING_RESULTS = "missing_results"    # naive schemes: wrong count
    REPLICA_DISAGREEMENT = "replica_disagreement"  # double-check baseline
    MISSING_RINGER = "missing_ringer"      # ringer baseline
    PROTOCOL_VIOLATION = "protocol_violation"


@dataclass(frozen=True)
class SampleVerdict:
    """Per-sample verification result (CBS Step 4)."""

    index: int
    accepted: bool
    reason: RejectReason = RejectReason.OK


@dataclass
class VerificationOutcome:
    """The supervisor's final decision for one participant's task."""

    task_id: str
    accepted: bool
    verdicts: list[SampleVerdict] = field(default_factory=list)
    reason: RejectReason = RejectReason.OK

    @property
    def first_failure(self) -> SampleVerdict | None:
        """The first rejected sample, if any."""
        for verdict in self.verdicts:
            if not verdict.accepted:
                return verdict
        return None


@dataclass
class SchemeRunResult:
    """Everything produced by one scheme execution.

    ``work`` is ground truth (which indices were honestly computed);
    analyses use it to label runs as true/false accept/reject.
    """

    outcome: VerificationOutcome
    participant_ledger: CostLedger
    supervisor_ledger: CostLedger
    work: ComputedWork | None = None
    #: Ledger for third parties (broker, replicas); zero for 2-party runs.
    other_ledger: CostLedger = field(default_factory=CostLedger)

    @property
    def cheated(self) -> bool:
        """Whether the participant actually skipped any input."""
        return self.work is not None and self.work.honesty_ratio < 1.0

    @property
    def true_detection(self) -> bool:
        """Cheater rejected (the defender's win condition)."""
        return self.cheated and not self.outcome.accepted

    @property
    def false_alarm(self) -> bool:
        """Honest participant rejected (soundness violation, Thm 1)."""
        return not self.cheated and not self.outcome.accepted

    @property
    def undetected_cheat(self) -> bool:
        """Cheater accepted (the Eq. 2 event)."""
        return self.cheated and self.outcome.accepted

    @property
    def total_bytes_on_wire(self) -> int:
        """Bytes sent by all parties in this run."""
        return (
            self.participant_ledger.bytes_sent
            + self.supervisor_ledger.bytes_sent
            + self.other_ledger.bytes_sent
        )


class VerificationScheme(abc.ABC):
    """A pluggable anti-cheating scheme (CBS, NI-CBS, or baseline)."""

    #: Human-readable scheme label used in reports and tables.
    name: str = "scheme"

    @abc.abstractmethod
    def run(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        seed: int = 0,
    ) -> SchemeRunResult:
        """Execute the full protocol for one assignment.

        ``seed`` drives all randomness (sample selection, fabrication
        salts), making runs exactly reproducible.
        """

    def run_batch(self, jobs: Sequence["SchemeJob"]) -> list[SchemeRunResult]:
        """Execute a batch of independent runs, in job order.

        This is the unit the execution engine ships to pooled workers
        (one pickled :class:`~repro.engine.jobs.SchemeBatch` per
        chunk).  The default is a plain loop — exactly equivalent to
        calling :meth:`run` per job — but schemes may override it to
        amortize per-batch setup, as long as per-job results stay
        identical to the serial semantics.
        """
        return [
            self.run(job.assignment, job.behavior, seed=job.seed)
            for job in jobs
        ]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
