"""Storage/computation trade-off (paper §3.3) and the tree backend.

:class:`TreeBackend` gives the CBS participant a uniform proving
interface over either a full in-memory Merkle tree or the §3.3 partial
tree (top ``H − ℓ`` levels only).  The closed forms of §3.3 are
provided as functions for experiment E4:

* storage ``S = 2^(H − ℓ + 1)`` digests,
* per-sample rebuild cost ``2^ℓ`` evaluations of ``f``,
* relative computation overhead ``rco = m · 2^ℓ / |D| = 2m / S``.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.exceptions import MerkleError
from repro.merkle.hashing import HashFunction
from repro.merkle.partial import PartialMerkleTree
from repro.merkle.proof import AuthenticationPath
from repro.merkle.tree import LeafEncoding, MerkleTree
from repro.utils.bitmath import ceil_log2, next_power_of_two


def predicted_rco(m: int, n: int, subtree_height: int) -> float:
    """The paper's ``rco = m · 2^ℓ / |D|`` (§3.3).

    Equals ``2m / S`` with ``S = 2^(H − ℓ + 1)`` when ``|D|`` is a
    power of two (the paper's setting); for padded domains the ratio is
    taken over the *real* ``|D|`` since only real leaves cost an
    ``f``-evaluation to rebuild.
    """
    if m < 0 or n <= 0 or subtree_height < 0:
        raise ValueError("m >= 0, n > 0, subtree_height >= 0 required")
    return m * (1 << subtree_height) / float(n)


def rco_from_storage(m: int, storage_digests: int) -> float:
    """The storage-form identity ``rco = 2m / S``."""
    if storage_digests <= 0:
        raise ValueError(f"storage must be positive, got {storage_digests}")
    return 2.0 * m / storage_digests


def storage_for_rco(m: int, target_rco: float) -> int:
    """Digest budget ``S`` achieving a target ``rco`` (inverse of §3.3).

    E.g. ``m = 64``, ``target_rco = 2^-25`` gives the paper's 4G
    (``2^32``) figure.
    """
    if target_rco <= 0:
        raise ValueError(f"target_rco must be positive, got {target_rco}")
    return max(2, next_power_of_two(int(round(2.0 * m / target_rco))))


def subtree_height_for_storage(n: int, storage_digests: int) -> int:
    """Largest ``ℓ`` keeping stored digests within budget.

    Storage at ``ℓ`` is ``2^(H−ℓ+1) − 1``; solve for the smallest
    stored top that fits, clamped to ``[0, H]``.
    """
    height = ceil_log2(next_power_of_two(n))
    for ell in range(0, height + 1):
        if (1 << (height - ell + 1)) - 1 <= storage_digests:
            return ell
    return height


class TreeBackend:
    """Participant-side commitment tree: full or partial storage.

    Parameters
    ----------
    payloads:
        Leaf payloads in domain order (the behaviour's output).
    hash_fn, leaf_encoding:
        Merkle parameters; must match the supervisor's.
    subtree_height:
        ``None`` or ``0`` for the full tree; ``ℓ > 0`` enables the
        §3.3 partial tree, with per-proof subtree rebuilds whose leaf
        recomputation is charged through ``recompute``.
    recompute:
        Callback ``index -> payload`` used by the partial tree to
        regenerate discarded leaves.  The caller passes a *metered*
        recomputation so rebuild costs land in the ledger (the paper's
        ``2^ℓ`` evaluations of ``f`` per sample).
    """

    def __init__(
        self,
        payloads: Sequence[bytes],
        hash_fn: HashFunction,
        leaf_encoding: LeafEncoding,
        subtree_height: int | None = None,
        recompute: Callable[[int], bytes] | None = None,
    ) -> None:
        self.hash_fn = hash_fn
        self.leaf_encoding = leaf_encoding
        self.subtree_height = int(subtree_height or 0)
        self._payloads = list(payloads)
        if self.subtree_height > 0:
            if recompute is None:
                raise MerkleError(
                    "partial tree backend requires a recompute callback"
                )
            self._partial = PartialMerkleTree(
                self._payloads,
                leaf_provider=recompute,
                subtree_height=self.subtree_height,
                hash_fn=hash_fn,
                leaf_encoding=leaf_encoding,
            )
            self._full: MerkleTree | None = None
        else:
            self._partial = None
            self._full = MerkleTree(
                self._payloads, hash_fn=hash_fn, leaf_encoding=leaf_encoding
            )

    @property
    def root(self) -> bytes:
        """The commitment ``Φ(R)``."""
        return self._full.root if self._full is not None else self._partial.root

    @property
    def n_leaves(self) -> int:
        return len(self._payloads)

    @property
    def stored_digests(self) -> int:
        """Storage footprint in digests (E4's measured ``S``)."""
        if self._full is not None:
            return self._full.n_nodes
        return self._partial.stored_node_count

    @property
    def leaves_recomputed(self) -> int:
        """Leaf re-evaluations triggered by proofs (partial mode only)."""
        return 0 if self._partial is None else self._partial.leaves_recomputed

    def committed_payload(self, index: int) -> bytes:
        """The payload committed at leaf ``index`` (the claimed result)."""
        return self._payloads[index]

    def auth_path(self, index: int) -> AuthenticationPath:
        """Authentication path for leaf ``index``."""
        if self._full is not None:
            return self._full.auth_path(index)
        return self._partial.auth_path(index)

    @property
    def full_tree(self) -> MerkleTree:
        """The in-memory tree (batched multiproofs need it).

        Raises :class:`~repro.exceptions.MerkleError` in §3.3 partial
        mode, where interior nodes below the cut are not stored.
        """
        if self._full is None:
            raise MerkleError(
                "batched proofs require the full-tree backend "
                "(subtree_height in (None, 0))"
            )
        return self._full
