"""The paper's contribution: Commitment-Based Sampling and variants.

* :mod:`repro.core.cbs` — the interactive CBS scheme (§3.1, Steps 1–4).
* :mod:`repro.core.ni_cbs` — the non-interactive variant (§4) where
  sample indices are derived from the committed root.
* :mod:`repro.core.storage_opt` — the §3.3 storage/computation
  trade-off (partial Merkle tree backend and the ``rco`` closed form).
* :mod:`repro.core.protocol` — the wire messages, with real byte
  encodings for communication accounting.
* :mod:`repro.core.scheme` — the uniform ``VerificationScheme``
  interface the grid simulator drives, plus outcome dataclasses.
"""

from repro.core.cbs import CBSParticipant, CBSScheme, CBSSupervisor
from repro.core.ni_cbs import NICBSParticipant, NICBSScheme, NICBSSupervisor
from repro.core.protocol import (
    CommitmentMsg,
    ProofBundleMsg,
    SampleChallengeMsg,
    SampleProof,
    VerdictMsg,
)
from repro.core.scheme import (
    SampleVerdict,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.core.storage_opt import TreeBackend, predicted_rco, storage_for_rco

__all__ = [
    "CBSParticipant",
    "CBSSupervisor",
    "CBSScheme",
    "NICBSParticipant",
    "NICBSSupervisor",
    "NICBSScheme",
    "CommitmentMsg",
    "SampleChallengeMsg",
    "SampleProof",
    "ProofBundleMsg",
    "VerdictMsg",
    "VerificationScheme",
    "VerificationOutcome",
    "SampleVerdict",
    "SchemeRunResult",
    "TreeBackend",
    "predicted_rco",
    "storage_for_rco",
]
