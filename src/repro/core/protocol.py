"""Wire messages for the CBS protocols, with real byte encodings.

Experiment E3 reproduces the paper's communication-cost claims
(``O(n)`` naive vs ``O(m log n)`` CBS), so every message serializes to
actual bytes via the canonical codec, and the simulated network
accounts ``len(encode())`` per transfer.

Message flow (interactive CBS, §3.1):

1. participant → supervisor: :class:`CommitmentMsg` (``Φ(R)``)
2. supervisor → participant: :class:`SampleChallengeMsg` (``i_1..i_m``)
3. participant → supervisor: :class:`ProofBundleMsg`
   (per sample: claimed ``f(x_i)`` + sibling digests ``λ_1..λ_H``)
4. supervisor → participant: :class:`VerdictMsg`

NI-CBS (§4) collapses 1–3 into a single :class:`NICBSSubmissionMsg`.
The naive baselines use :class:`FullResultsMsg` (all ``n`` results on
the wire) — the ``O(n)`` cost CBS eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import CodecError
from repro.merkle.proof import AuthenticationPath
from repro.merkle.serialize import decode_auth_path, encode_auth_path
from repro.utils.encoding import (
    encode_bytes,
    encode_bytes_list,
    encode_uint,
    encode_uint_list,
    read_bytes,
    read_bytes_list,
    read_uint,
    read_uint_list,
)


def _encode_task_id(task_id: str) -> bytes:
    return encode_bytes(task_id.encode("utf-8"))


def _decode_text(raw: bytes, what: str) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8 in {what}: {exc}") from exc


def _read_task_id(data: bytes, offset: int) -> tuple[str, int]:
    raw, pos = read_bytes(data, offset)
    return _decode_text(raw, "task id"), pos


@dataclass(frozen=True)
class CommitmentMsg:
    """Step 1: the Merkle root ``Φ(R)`` commits all ``n`` results."""

    task_id: str
    root: bytes
    n_leaves: int

    def encode(self) -> bytes:
        return (
            _encode_task_id(self.task_id)
            + encode_bytes(self.root)
            + encode_uint(self.n_leaves)
        )

    @classmethod
    def decode(cls, data: bytes) -> "CommitmentMsg":
        task_id, pos = _read_task_id(data, 0)
        root, pos = read_bytes(data, pos)
        n_leaves, pos = read_uint(data, pos)
        if pos != len(data):
            raise CodecError("trailing bytes in CommitmentMsg")
        return cls(task_id=task_id, root=root, n_leaves=n_leaves)

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class SampleChallengeMsg:
    """Step 2: the supervisor's ``m`` sample indices (0-based)."""

    task_id: str
    indices: tuple[int, ...]

    def encode(self) -> bytes:
        return _encode_task_id(self.task_id) + encode_uint_list(list(self.indices))

    @classmethod
    def decode(cls, data: bytes) -> "SampleChallengeMsg":
        task_id, pos = _read_task_id(data, 0)
        indices, pos = read_uint_list(data, pos)
        if pos != len(data):
            raise CodecError("trailing bytes in SampleChallengeMsg")
        return cls(task_id=task_id, indices=tuple(indices))

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class SampleProof:
    """Step 3 payload for one sample: claimed result + auth path."""

    index: int
    claimed_result: bytes
    path: AuthenticationPath

    def encode(self) -> bytes:
        return (
            encode_uint(self.index)
            + encode_bytes(self.claimed_result)
            + encode_auth_path(self.path)
        )

    @classmethod
    def decode_at(cls, data: bytes, offset: int) -> tuple["SampleProof", int]:
        index, pos = read_uint(data, offset)
        claimed, pos = read_bytes(data, pos)
        path, pos = decode_auth_path(data, pos)
        return cls(index=index, claimed_result=claimed, path=path), pos

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class ProofBundleMsg:
    """Step 3: proofs for all challenged samples."""

    task_id: str
    proofs: tuple[SampleProof, ...]

    def encode(self) -> bytes:
        out = bytearray(_encode_task_id(self.task_id))
        out += encode_uint(len(self.proofs))
        for proof in self.proofs:
            out += proof.encode()
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "ProofBundleMsg":
        task_id, pos = _read_task_id(data, 0)
        count, pos = read_uint(data, pos)
        proofs: list[SampleProof] = []
        for _ in range(count):
            proof, pos = SampleProof.decode_at(data, pos)
            proofs.append(proof)
        if pos != len(data):
            raise CodecError("trailing bytes in ProofBundleMsg")
        return cls(task_id=task_id, proofs=tuple(proofs))

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class BatchProofMsg:
    """Step 3 variant: one compressed multiproof for all samples.

    An optimization over :class:`ProofBundleMsg` (E11): the sampled
    leaves' authentication paths share interior digests, so a single
    :class:`~repro.merkle.multiproof.MerkleMultiProof` is strictly
    smaller than ``m`` independent paths.  Claimed results ride along
    per distinct index (duplicate samples collapse).
    """

    task_id: str
    indices: tuple[int, ...]
    claimed_results: tuple[bytes, ...]
    proof_bytes: bytes  # encoded MerkleMultiProof

    def encode(self) -> bytes:
        return (
            _encode_task_id(self.task_id)
            + encode_uint_list(list(self.indices))
            + encode_bytes_list(list(self.claimed_results))
            + encode_bytes(self.proof_bytes)
        )

    @classmethod
    def decode(cls, data: bytes) -> "BatchProofMsg":
        task_id, pos = _read_task_id(data, 0)
        indices, pos = read_uint_list(data, pos)
        claimed, pos = read_bytes_list(data, pos)
        proof, pos = read_bytes(data, pos)
        if pos != len(data):
            raise CodecError("trailing bytes in BatchProofMsg")
        return cls(
            task_id=task_id,
            indices=tuple(indices),
            claimed_results=tuple(claimed),
            proof_bytes=proof,
        )

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class NICBSSubmissionMsg:
    """NI-CBS single-shot submission: commitment + self-derived proofs.

    The broker architecture (§4) forwards this from participant to
    supervisor without any interactive round.
    """

    task_id: str
    root: bytes
    n_leaves: int
    proofs: tuple[SampleProof, ...]

    def encode(self) -> bytes:
        out = bytearray(_encode_task_id(self.task_id))
        out += encode_bytes(self.root)
        out += encode_uint(self.n_leaves)
        out += encode_uint(len(self.proofs))
        for proof in self.proofs:
            out += proof.encode()
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "NICBSSubmissionMsg":
        task_id, pos = _read_task_id(data, 0)
        root, pos = read_bytes(data, pos)
        n_leaves, pos = read_uint(data, pos)
        count, pos = read_uint(data, pos)
        proofs: list[SampleProof] = []
        for _ in range(count):
            proof, pos = SampleProof.decode_at(data, pos)
            proofs.append(proof)
        if pos != len(data):
            raise CodecError("trailing bytes in NICBSSubmissionMsg")
        return cls(task_id=task_id, root=root, n_leaves=n_leaves, proofs=tuple(proofs))

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class FullResultsMsg:
    """All ``n`` results on the wire — the naive baselines' payload."""

    task_id: str
    results: tuple[bytes, ...]

    def encode(self) -> bytes:
        return _encode_task_id(self.task_id) + encode_bytes_list(list(self.results))

    @classmethod
    def decode(cls, data: bytes) -> "FullResultsMsg":
        task_id, pos = _read_task_id(data, 0)
        results, pos = read_bytes_list(data, pos)
        if pos != len(data):
            raise CodecError("trailing bytes in FullResultsMsg")
        return cls(task_id=task_id, results=tuple(results))

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class ReportsMsg:
    """Screener hits (the results of interest) — normal grid payload."""

    task_id: str
    reports: tuple[str, ...] = field(default_factory=tuple)

    def encode(self) -> bytes:
        return _encode_task_id(self.task_id) + encode_bytes_list(
            [r.encode("utf-8") for r in self.reports]
        )

    @classmethod
    def decode(cls, data: bytes) -> "ReportsMsg":
        task_id, pos = _read_task_id(data, 0)
        raw, pos = read_bytes_list(data, pos)
        if pos != len(data):
            raise CodecError("trailing bytes in ReportsMsg")
        return cls(
            task_id=task_id,
            reports=tuple(_decode_text(r, "report") for r in raw),
        )

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class AssignMsg:
    """Task assignment descriptor sent supervisor → participant.

    Carries enough to identify the work (task id, domain bounds and a
    workload label); the function itself is code both sides share, as
    in real grids where the client software embeds the kernel.
    """

    task_id: str
    n_inputs: int
    workload: str = ""

    def encode(self) -> bytes:
        return (
            _encode_task_id(self.task_id)
            + encode_uint(self.n_inputs)
            + encode_bytes(self.workload.encode("utf-8"))
        )

    @classmethod
    def decode(cls, data: bytes) -> "AssignMsg":
        task_id, pos = _read_task_id(data, 0)
        n_inputs, pos = read_uint(data, pos)
        workload, pos = read_bytes(data, pos)
        if pos != len(data):
            raise CodecError("trailing bytes in AssignMsg")
        return cls(
            task_id=task_id,
            n_inputs=n_inputs,
            workload=_decode_text(workload, "workload"),
        )

    def wire_size(self) -> int:
        return len(self.encode())


@dataclass(frozen=True)
class VerdictMsg:
    """Step 4 outcome: accepted, or caught with a reason."""

    task_id: str
    accepted: bool
    reason: str = ""

    def encode(self) -> bytes:
        return (
            _encode_task_id(self.task_id)
            + encode_uint(1 if self.accepted else 0)
            + encode_bytes(self.reason.encode("utf-8"))
        )

    @classmethod
    def decode(cls, data: bytes) -> "VerdictMsg":
        task_id, pos = _read_task_id(data, 0)
        flag, pos = read_uint(data, pos)
        reason, pos = read_bytes(data, pos)
        if pos != len(data):
            raise CodecError("trailing bytes in VerdictMsg")
        return cls(
            task_id=task_id,
            accepted=bool(flag),
            reason=_decode_text(reason, "reason"),
        )

    def wire_size(self) -> int:
        return len(self.encode())
