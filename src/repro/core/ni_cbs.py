"""The non-interactive CBS scheme (paper §4).

The interactive round (commit → challenge) is removed by deriving the
sample indices from the commitment itself::

    i_k = (g^k(Φ(R)) mod n) + 1,   k = 1..m          (Eq. 4)

where ``g`` is a one-way hash applied iteratively (``g^k`` means ``g``
applied ``k`` times; we realize the chain incrementally).  Because
``Φ(R)`` fixes the samples, the participant can self-select them only
*after* building the tree, and cannot steer them — except by the
**regrinding attack** (§4.2): rebuild the tree with fresh filler values
until all derived samples land in the computed subset.  The defence is
economic (Eq. 5): make ``g`` expensive enough (an
:class:`~repro.merkle.hashing.IteratedHash` with ``k`` rounds) that the
expected ``1/r^m`` attempts cost more than honest computation.
``repro.cheating.regrind`` implements the attack; experiment E5
measures both sides of the inequality.

Internally indices are 0-based (``mod n`` without the paper's ``+1``);
the arithmetic is otherwise identical.
"""

from __future__ import annotations

from repro.cheating.strategies import Behavior
from repro.core.cbs import CBSParticipant, transfer
from repro.core.protocol import NICBSSubmissionMsg, SampleChallengeMsg
from repro.core.scheme import (
    RejectReason,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.core.verification import verify_sample_proof
from repro.exceptions import ProtocolError, SchemeConfigurationError
from repro.accounting import CostLedger
from repro.merkle.hashing import CountingHash, HashFunction, get_hash
from repro.merkle.tree import LeafEncoding
from repro.tasks.function import MeteredFunction
from repro.tasks.result import TaskAssignment


def derive_sample_indices(
    root: bytes, n: int, m: int, sample_hash: HashFunction
) -> list[int]:
    """Eq. (4): the ``m`` self-selected sample indices for a commitment.

    ``sample_hash`` is the paper's ``g``; the chain
    ``g(Φ(R)), g(g(Φ(R))), ...`` yields one index per link, reduced
    ``mod n`` (0-based).
    """
    if n < 1:
        raise SchemeConfigurationError(f"domain size must be >= 1, got {n}")
    if m < 1:
        raise SchemeConfigurationError(f"m must be >= 1, got {m}")
    value = root
    indices: list[int] = []
    for _ in range(m):
        value = sample_hash.digest(value)
        indices.append(int.from_bytes(value, "big") % n)
    return indices


class NICBSParticipant(CBSParticipant):
    """Participant side of NI-CBS: commits, self-derives, proves.

    Extends :class:`~repro.core.cbs.CBSParticipant` with the Eq. (4)
    derivation; the sample-generation hash ``g`` is metered separately
    (it is the knob Eq. (5) turns).
    """

    def __init__(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        n_samples: int,
        sample_hash: HashFunction | None = None,
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        subtree_height: int | None = None,
        ledger: CostLedger | None = None,
        salt: bytes = b"",
    ) -> None:
        super().__init__(
            assignment,
            behavior,
            hash_fn=hash_fn,
            leaf_encoding=leaf_encoding,
            subtree_height=subtree_height,
            ledger=ledger,
            salt=salt,
        )
        self.n_samples = n_samples
        self.sample_hash = CountingHash(
            sample_hash or get_hash("sha256"), self.ledger
        )

    def compute_and_submit(self) -> NICBSSubmissionMsg:
        """One-shot: build tree, derive samples, bundle the proofs."""
        commitment = self.compute_and_commit()
        indices = derive_sample_indices(
            commitment.root,
            n=self.assignment.n_inputs,
            m=self.n_samples,
            sample_hash=self.sample_hash,
        )
        bundle = self.prove(
            SampleChallengeMsg(
                task_id=self.assignment.task_id, indices=tuple(indices)
            )
        )
        return NICBSSubmissionMsg(
            task_id=self.assignment.task_id,
            root=commitment.root,
            n_leaves=commitment.n_leaves,
            proofs=bundle.proofs,
        )


class NICBSSupervisor:
    """Supervisor side of NI-CBS: re-derive samples, verify proofs.

    No challenge is sent; the supervisor recomputes Eq. (4) from the
    submitted root (paying ``m`` evaluations of ``g``) and insists the
    submitted proofs cover exactly those indices, in order.
    """

    def __init__(
        self,
        assignment: TaskAssignment,
        n_samples: int,
        sample_hash: HashFunction | None = None,
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        ledger: CostLedger | None = None,
        stop_on_first_failure: bool = True,
    ) -> None:
        if n_samples < 1:
            raise SchemeConfigurationError(f"n_samples must be >= 1, got {n_samples}")
        self.assignment = assignment
        self.n_samples = n_samples
        self.ledger = ledger if ledger is not None else CostLedger()
        self.hash_fn = CountingHash(hash_fn or get_hash(), self.ledger)
        self.sample_hash = CountingHash(
            sample_hash or get_hash("sha256"), self.ledger
        )
        self.leaf_encoding = leaf_encoding
        self.stop_on_first_failure = stop_on_first_failure
        self._metered = MeteredFunction(assignment.function, self.ledger)

    def verify(self, submission: NICBSSubmissionMsg) -> VerificationOutcome:
        """Validate the one-shot submission end to end."""
        if submission.task_id != self.assignment.task_id:
            raise ProtocolError(
                f"submission for task {submission.task_id!r}, "
                f"expected {self.assignment.task_id!r}"
            )
        outcome = VerificationOutcome(
            task_id=self.assignment.task_id, accepted=True
        )
        if submission.n_leaves != self.assignment.n_inputs:
            outcome.accepted = False
            outcome.reason = RejectReason.PROTOCOL_VIOLATION
            return outcome
        if len(submission.root) != self.hash_fn.digest_size:
            outcome.accepted = False
            outcome.reason = RejectReason.PROTOCOL_VIOLATION
            return outcome

        expected = derive_sample_indices(
            submission.root,
            n=self.assignment.n_inputs,
            m=self.n_samples,
            sample_hash=self.sample_hash,
        )
        submitted = [proof.index for proof in submission.proofs]
        if submitted != expected:
            outcome.accepted = False
            outcome.reason = RejectReason.SAMPLE_MISMATCH
            return outcome

        for proof, expected_index in zip(submission.proofs, expected):
            self.ledger.bump("samples_verified")
            verdict = verify_sample_proof(
                proof=proof,
                expected_index=expected_index,
                root=submission.root,
                n_leaves=submission.n_leaves,
                domain=self.assignment.domain,
                function=self._metered,
                hash_fn=self.hash_fn,
                leaf_encoding=self.leaf_encoding,
            )
            outcome.verdicts.append(verdict)
            if not verdict.accepted:
                outcome.accepted = False
                outcome.reason = verdict.reason
                if self.stop_on_first_failure:
                    break
        return outcome


class NICBSScheme(VerificationScheme):
    """Full NI-CBS run behind the uniform scheme interface.

    ``sample_hash_name`` selects ``g``; use ``"md5^<k>"``-style names to
    reproduce the paper's iterated-MD5 hardening (Eq. 5).
    """

    def __init__(
        self,
        n_samples: int,
        sample_hash_name: str = "sha256",
        hash_name: str = "sha256",
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        subtree_height: int | None = None,
        stop_on_first_failure: bool = True,
    ) -> None:
        self.n_samples = n_samples
        self.sample_hash_name = sample_hash_name
        self.hash_name = hash_name
        self.leaf_encoding = leaf_encoding
        self.subtree_height = subtree_height
        self.stop_on_first_failure = stop_on_first_failure
        self.name = f"ni-cbs(m={n_samples}, g={sample_hash_name})"

    def run(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        seed: int = 0,
    ) -> SchemeRunResult:
        participant_ledger = CostLedger()
        supervisor_ledger = CostLedger()
        hash_fn = get_hash(self.hash_name)
        sample_hash = get_hash(self.sample_hash_name)

        participant = NICBSParticipant(
            assignment,
            behavior,
            n_samples=self.n_samples,
            sample_hash=sample_hash,
            hash_fn=hash_fn,
            leaf_encoding=self.leaf_encoding,
            subtree_height=self.subtree_height,
            ledger=participant_ledger,
            salt=seed.to_bytes(8, "big"),
        )
        supervisor = NICBSSupervisor(
            assignment,
            n_samples=self.n_samples,
            sample_hash=sample_hash,
            hash_fn=hash_fn,
            leaf_encoding=self.leaf_encoding,
            ledger=supervisor_ledger,
            stop_on_first_failure=self.stop_on_first_failure,
        )

        submission = transfer(
            participant.compute_and_submit(), participant_ledger, supervisor_ledger
        )
        outcome = supervisor.verify(submission)

        return SchemeRunResult(
            outcome=outcome,
            participant_ledger=participant_ledger,
            supervisor_ledger=supervisor_ledger,
            work=participant.work,
        )
