"""The interactive Commitment-Based Sampling scheme (paper §3.1).

Protocol (Steps 1–4 of the paper):

1. **Building the Merkle tree.**  The participant evaluates ``f`` over
   its subdomain (or cheats — the behaviour decides), builds the tree
   with ``Φ(L_i) = f(x_i)``, and sends the root ``Φ(R)`` as its
   commitment.
2. **Sample selection.**  The supervisor draws ``m`` indices uniformly
   at random and sends them — crucially, *after* the commitment landed.
3. **Proof of honesty.**  For each sampled index the participant sends
   the claimed ``f(x_i)`` plus the sibling ``Φ`` values along the
   leaf-to-root path.
4. **Verification.**  The supervisor checks the claimed result and
   reconstructs the root; any failure means the participant is caught.

:class:`CBSParticipant` and :class:`CBSSupervisor` expose the four
steps as explicit methods (used directly by the examples), and
:class:`CBSScheme` packages a full run behind the uniform
:class:`~repro.core.scheme.VerificationScheme` interface with
byte-accurate communication accounting.
"""

from __future__ import annotations

import random

from repro.cheating.strategies import Behavior, ComputedWork
from repro.core.protocol import (
    BatchProofMsg,
    CommitmentMsg,
    ProofBundleMsg,
    ReportsMsg,
    SampleChallengeMsg,
    SampleProof,
    VerdictMsg,
)
from repro.core.scheme import (
    RejectReason,
    SampleVerdict,
    SchemeRunResult,
    VerificationOutcome,
    VerificationScheme,
)
from repro.core.storage_opt import TreeBackend
from repro.core.verification import verify_sample_proof
from repro.exceptions import ProtocolError, ReproError, SchemeConfigurationError
from repro.accounting import CostLedger
from repro.merkle.hashing import CountingHash, HashFunction, get_hash
from repro.merkle.multiproof import MerkleMultiProof, build_multiproof
from repro.merkle.tree import LeafEncoding
from repro.tasks.function import MeteredFunction
from repro.tasks.result import TaskAssignment


class CBSParticipant:
    """Participant side of interactive CBS.

    Parameters
    ----------
    assignment:
        The task (domain, function, screener).
    behavior:
        Honest or cheating strategy producing the leaf payloads.
    hash_fn, leaf_encoding:
        Merkle parameters (must match the supervisor's).
    subtree_height:
        ``None``/``0`` for the full tree; ``ℓ > 0`` enables the §3.3
        storage-optimized backend.
    ledger:
        Cost ledger charged with evaluations, hashing, storage and
        traffic; a fresh one is created if omitted.
    salt:
        Varies cheating fabrications across protocol retries.
    """

    def __init__(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        subtree_height: int | None = None,
        ledger: CostLedger | None = None,
        salt: bytes = b"",
    ) -> None:
        self.assignment = assignment
        self.behavior = behavior
        self.ledger = ledger if ledger is not None else CostLedger()
        self.hash_fn = CountingHash(hash_fn or get_hash(), self.ledger)
        self.leaf_encoding = leaf_encoding
        self.subtree_height = subtree_height
        self.salt = salt
        self._metered = MeteredFunction(assignment.function, self.ledger)
        self.work: ComputedWork | None = None
        self.backend: TreeBackend | None = None

    # ------------------------------------------------------------------
    # Step 1
    # ------------------------------------------------------------------

    def compute_and_commit(self) -> CommitmentMsg:
        """Evaluate the task (per behaviour), build the tree, commit."""
        if self.work is not None:
            raise ProtocolError("compute_and_commit called twice")
        self.work = self.behavior.produce(
            self.assignment, self._metered.evaluate, salt=self.salt
        )

        def recompute(index: int) -> bytes:
            # §3.3 subtree rebuild: honestly-computed leaves cost a
            # real f-evaluation; fabricated leaves regenerate for free
            # (the cheater just re-draws the same guess).
            if index in self.work.honest_indices:
                return self._metered.evaluate(self.assignment.domain[index])
            return self.work.leaf_payloads[index]

        self.backend = TreeBackend(
            self.work.leaf_payloads,
            hash_fn=self.hash_fn,
            leaf_encoding=self.leaf_encoding,
            subtree_height=self.subtree_height,
            recompute=recompute,
        )
        self.ledger.record_storage(self.backend.stored_digests)
        self.ledger.bump("commitments")
        return CommitmentMsg(
            task_id=self.assignment.task_id,
            root=self.backend.root,
            n_leaves=self.assignment.n_inputs,
        )

    # ------------------------------------------------------------------
    # Step 3
    # ------------------------------------------------------------------

    def prove(self, challenge: SampleChallengeMsg) -> ProofBundleMsg:
        """Answer a sample challenge with claimed results + auth paths."""
        if self.backend is None:
            raise ProtocolError("prove() before compute_and_commit()")
        if challenge.task_id != self.assignment.task_id:
            raise ProtocolError(
                f"challenge for task {challenge.task_id!r}, "
                f"expected {self.assignment.task_id!r}"
            )
        n = self.assignment.n_inputs
        proofs = []
        for index in challenge.indices:
            if not 0 <= index < n:
                raise ProtocolError(f"challenged index {index} outside [0, {n})")
            proofs.append(
                SampleProof(
                    index=index,
                    claimed_result=self.backend.committed_payload(index),
                    path=self.backend.auth_path(index),
                )
            )
        self.ledger.bump("proofs", len(proofs))
        return ProofBundleMsg(task_id=self.assignment.task_id, proofs=tuple(proofs))

    def prove_batch(self, challenge: SampleChallengeMsg) -> BatchProofMsg:
        """Step 3 with one compressed multiproof for all samples (E11).

        Duplicate sample indices (with-replacement draws) collapse to
        one proven leaf.  Requires the full-tree backend.
        """
        if self.backend is None:
            raise ProtocolError("prove_batch() before compute_and_commit()")
        if challenge.task_id != self.assignment.task_id:
            raise ProtocolError(
                f"challenge for task {challenge.task_id!r}, "
                f"expected {self.assignment.task_id!r}"
            )
        n = self.assignment.n_inputs
        distinct = sorted(set(challenge.indices))
        for index in distinct:
            if not 0 <= index < n:
                raise ProtocolError(f"challenged index {index} outside [0, {n})")
        proof = build_multiproof(self.backend.full_tree, distinct)
        self.ledger.bump("proofs", len(distinct))
        return BatchProofMsg(
            task_id=self.assignment.task_id,
            indices=tuple(distinct),
            claimed_results=tuple(
                self.backend.committed_payload(i) for i in distinct
            ),
            proof_bytes=proof.encode(),
        )

    # ------------------------------------------------------------------
    # Screener reports (the grid's normal payload, §2.1)
    # ------------------------------------------------------------------

    def reports(self) -> ReportsMsg:
        """Run the screener over the (claimed) results and report hits.

        The malicious behaviour corrupts this step (§2.2); semi-honest
        cheaters screen their fabrications, so skipped "interesting"
        inputs silently vanish — the damage the paper wants detectable.
        """
        if self.work is None:
            raise ProtocolError("reports() before compute_and_commit()")
        screener = self.assignment.screener
        if screener is None:
            return ReportsMsg(task_id=self.assignment.task_id, reports=())
        screener.reset()
        hits: list[str] = []
        for i in range(self.assignment.n_inputs):
            self.ledger.charge_screening(screener.cost)
            report = screener.screen(
                self.assignment.domain[i], self.work.leaf_payloads[i]
            )
            report = self.behavior.corrupt_report(report, i)
            if report is not None:
                hits.append(report)
        return ReportsMsg(task_id=self.assignment.task_id, reports=tuple(hits))


class CBSSupervisor:
    """Supervisor side of interactive CBS.

    Holds the task spec (domain + function), receives the commitment,
    issues the challenge and verifies the proofs.  All verification
    work (result checks, root reconstructions) is charged to the
    supervisor's ledger.
    """

    def __init__(
        self,
        assignment: TaskAssignment,
        n_samples: int,
        hash_fn: HashFunction | None = None,
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        seed: int = 0,
        ledger: CostLedger | None = None,
        with_replacement: bool = True,
        stop_on_first_failure: bool = True,
    ) -> None:
        if n_samples < 1:
            raise SchemeConfigurationError(f"n_samples must be >= 1, got {n_samples}")
        if not with_replacement and n_samples > assignment.n_inputs:
            raise SchemeConfigurationError(
                f"cannot draw {n_samples} distinct samples from "
                f"{assignment.n_inputs} inputs"
            )
        self.assignment = assignment
        self.n_samples = n_samples
        self.ledger = ledger if ledger is not None else CostLedger()
        self.hash_fn = CountingHash(hash_fn or get_hash(), self.ledger)
        self.leaf_encoding = leaf_encoding
        self.seed = seed
        self.with_replacement = with_replacement
        self.stop_on_first_failure = stop_on_first_failure
        self._metered = MeteredFunction(assignment.function, self.ledger)
        self._commitment: CommitmentMsg | None = None
        self._challenge: SampleChallengeMsg | None = None

    # ------------------------------------------------------------------

    def receive_commitment(self, msg: CommitmentMsg) -> None:
        """Accept and validate the participant's commitment (Step 1)."""
        if self._commitment is not None:
            raise ProtocolError("duplicate commitment")
        if msg.task_id != self.assignment.task_id:
            raise ProtocolError(
                f"commitment for task {msg.task_id!r}, "
                f"expected {self.assignment.task_id!r}"
            )
        if msg.n_leaves != self.assignment.n_inputs:
            raise ProtocolError(
                f"commitment covers {msg.n_leaves} leaves, "
                f"domain has {self.assignment.n_inputs}"
            )
        if len(msg.root) != self.hash_fn.digest_size:
            raise ProtocolError(
                f"root digest has {len(msg.root)} bytes, "
                f"expected {self.hash_fn.digest_size}"
            )
        self._commitment = msg

    def make_challenge(self) -> SampleChallengeMsg:
        """Draw the ``m`` sample indices (Step 2).

        Sampling is uniform *with replacement* by default, matching the
        independence assumption behind Eq. (2); ``with_replacement=False``
        draws a distinct subset (slightly stronger in practice).
        """
        if self._commitment is None:
            raise ProtocolError("challenge before commitment")
        if self._challenge is not None:
            raise ProtocolError("duplicate challenge")
        rng = random.Random(self.seed)
        n = self.assignment.n_inputs
        if self.with_replacement:
            indices = tuple(rng.randrange(n) for _ in range(self.n_samples))
        else:
            indices = tuple(rng.sample(range(n), self.n_samples))
        self._challenge = SampleChallengeMsg(
            task_id=self.assignment.task_id, indices=indices
        )
        return self._challenge

    def verify(self, bundle: ProofBundleMsg) -> VerificationOutcome:
        """Run Step 4 over the proof bundle and produce the verdict."""
        if self._challenge is None:
            raise ProtocolError("verify before challenge")
        if bundle.task_id != self.assignment.task_id:
            raise ProtocolError(
                f"proofs for task {bundle.task_id!r}, "
                f"expected {self.assignment.task_id!r}"
            )
        outcome = VerificationOutcome(
            task_id=self.assignment.task_id, accepted=True
        )
        expected = self._challenge.indices
        if len(bundle.proofs) != len(expected):
            outcome.accepted = False
            outcome.reason = RejectReason.MALFORMED_PROOF
            return outcome

        for proof, expected_index in zip(bundle.proofs, expected):
            self.ledger.bump("samples_verified")
            verdict = verify_sample_proof(
                proof=proof,
                expected_index=expected_index,
                root=self._commitment.root,
                n_leaves=self._commitment.n_leaves,
                domain=self.assignment.domain,
                function=self._metered,
                hash_fn=self.hash_fn,
                leaf_encoding=self.leaf_encoding,
            )
            outcome.verdicts.append(verdict)
            if not verdict.accepted:
                outcome.accepted = False
                outcome.reason = verdict.reason
                if self.stop_on_first_failure:
                    break
        return outcome

    def verify_batch(self, msg: BatchProofMsg) -> VerificationOutcome:
        """Step 4 over a compressed multiproof (E11).

        Checks: (a) the proven set is exactly the distinct challenged
        indices; (b) every claimed result passes the f-check; (c) the
        single root reconstruction matches the commitment.
        """
        if self._challenge is None:
            raise ProtocolError("verify before challenge")
        if msg.task_id != self.assignment.task_id:
            raise ProtocolError(
                f"proofs for task {msg.task_id!r}, "
                f"expected {self.assignment.task_id!r}"
            )
        outcome = VerificationOutcome(
            task_id=self.assignment.task_id, accepted=True
        )
        expected = tuple(sorted(set(self._challenge.indices)))
        if (
            msg.indices != expected
            or len(msg.claimed_results) != len(expected)
        ):
            outcome.accepted = False
            outcome.reason = RejectReason.MALFORMED_PROOF
            return outcome
        try:
            proof = MerkleMultiProof.decode(msg.proof_bytes)
        except ReproError:
            outcome.accepted = False
            outcome.reason = RejectReason.MALFORMED_PROOF
            return outcome
        if (
            proof.leaf_indices != expected
            or proof.n_leaves != self._commitment.n_leaves
            or proof.leaf_encoding != self.leaf_encoding
        ):
            outcome.accepted = False
            outcome.reason = RejectReason.MALFORMED_PROOF
            return outcome

        # Check 1 per sample: claimed f(x) correctness.
        claims = dict(zip(msg.indices, msg.claimed_results))
        for index in expected:
            self.ledger.bump("samples_verified")
            ok = self._metered.verify(
                self.assignment.domain[index], claims[index]
            )
            outcome.verdicts.append(
                SampleVerdict(
                    index=index,
                    accepted=ok,
                    reason=RejectReason.OK if ok else RejectReason.WRONG_RESULT,
                )
            )
            if not ok:
                outcome.accepted = False
                outcome.reason = RejectReason.WRONG_RESULT
                if self.stop_on_first_failure:
                    return outcome

        # Check 2 once: the batch root reconstruction.
        if outcome.accepted and not proof.verify(
            claims, self._commitment.root, self.hash_fn
        ):
            outcome.accepted = False
            outcome.reason = RejectReason.ROOT_MISMATCH
            outcome.verdicts = [
                SampleVerdict(
                    index=v.index,
                    accepted=False,
                    reason=RejectReason.ROOT_MISMATCH,
                )
                for v in outcome.verdicts
            ]
        return outcome

    def verdict_message(self, outcome: VerificationOutcome) -> VerdictMsg:
        """Wrap an outcome for the wire (Step 4 notification)."""
        return VerdictMsg(
            task_id=outcome.task_id,
            accepted=outcome.accepted,
            reason=outcome.reason.value if not outcome.accepted else "",
        )


def transfer(msg, sender: CostLedger, receiver: CostLedger):
    """Account a message transfer on both ledgers; return the message."""
    size = msg.wire_size()
    sender.record_send(size)
    receiver.record_receive(size)
    return msg


class CBSScheme(VerificationScheme):
    """Full interactive CBS run behind the uniform scheme interface.

    Parameters mirror the participant/supervisor constructors; ``m`` is
    the paper's sample count.  ``include_reports=True`` additionally
    ships the screener hits (the grid's useful output) so end-to-end
    traffic matches a real deployment.  ``batch_proofs=True`` replaces
    the ``m`` independent authentication paths with one compressed
    multiproof (the E11 optimization; full-tree backend only).
    """

    def __init__(
        self,
        n_samples: int,
        hash_name: str = "sha256",
        leaf_encoding: LeafEncoding = LeafEncoding.HASHED,
        subtree_height: int | None = None,
        with_replacement: bool = True,
        include_reports: bool = True,
        stop_on_first_failure: bool = True,
        batch_proofs: bool = False,
    ) -> None:
        if batch_proofs and subtree_height:
            raise SchemeConfigurationError(
                "batched proofs need the full tree; the §3.3 partial "
                "backend cannot serve interior digests below the cut"
            )
        self.n_samples = n_samples
        self.hash_name = hash_name
        self.leaf_encoding = leaf_encoding
        self.subtree_height = subtree_height
        self.with_replacement = with_replacement
        self.include_reports = include_reports
        self.stop_on_first_failure = stop_on_first_failure
        self.batch_proofs = batch_proofs
        self.name = (
            f"cbs-batched(m={n_samples})" if batch_proofs else f"cbs(m={n_samples})"
        )

    def run(
        self,
        assignment: TaskAssignment,
        behavior: Behavior,
        seed: int = 0,
    ) -> SchemeRunResult:
        participant_ledger = CostLedger()
        supervisor_ledger = CostLedger()
        hash_fn = get_hash(self.hash_name)

        participant = CBSParticipant(
            assignment,
            behavior,
            hash_fn=hash_fn,
            leaf_encoding=self.leaf_encoding,
            subtree_height=self.subtree_height,
            ledger=participant_ledger,
            salt=seed.to_bytes(8, "big"),
        )
        supervisor = CBSSupervisor(
            assignment,
            n_samples=self.n_samples,
            hash_fn=hash_fn,
            leaf_encoding=self.leaf_encoding,
            seed=seed,
            ledger=supervisor_ledger,
            with_replacement=self.with_replacement,
            stop_on_first_failure=self.stop_on_first_failure,
        )

        commitment = transfer(
            participant.compute_and_commit(), participant_ledger, supervisor_ledger
        )
        supervisor.receive_commitment(commitment)
        challenge = transfer(
            supervisor.make_challenge(), supervisor_ledger, participant_ledger
        )
        if self.batch_proofs:
            proofs = transfer(
                participant.prove_batch(challenge),
                participant_ledger,
                supervisor_ledger,
            )
            outcome = supervisor.verify_batch(proofs)
        else:
            proofs = transfer(
                participant.prove(challenge), participant_ledger, supervisor_ledger
            )
            outcome = supervisor.verify(proofs)
        transfer(
            supervisor.verdict_message(outcome), supervisor_ledger, participant_ledger
        )
        if self.include_reports and assignment.screener is not None:
            transfer(participant.reports(), participant_ledger, supervisor_ledger)

        return SchemeRunResult(
            outcome=outcome,
            participant_ledger=participant_ledger,
            supervisor_ledger=supervisor_ledger,
            work=participant.work,
        )
