"""Supervisor-side sample verification (paper §3.1 Step 4, Theorems 1–2).

For each challenged sample the supervisor performs the two checks the
paper specifies, in order:

1. **Correctness of f(x)** — via the task function's verifier (which
   may be cheaper than re-computation, §3.1's factoring remark).  An
   incorrect claimed result means the participant is caught.
2. **Commitment consistency** — reconstruct ``Φ(R')`` from the claimed
   result and the sibling digests ``λ_1..λ_H`` (the paper's
   ``Λ(f(x), λ_1..λ_H)``) and compare with the committed ``Φ(R)``.
   A mismatch means the value was not in the tree at commit time
   (Theorem 2), so even a *now-correct* result cannot retroactively
   prove the work was done before commitment.

Malformed proofs (wrong index, wrong path length) are rejected without
hashing — defensive checks a production verifier needs and tests
exercise via failure injection.
"""

from __future__ import annotations

from repro.core.protocol import SampleProof
from repro.core.scheme import RejectReason, SampleVerdict
from repro.merkle.hashing import HashFunction
from repro.merkle.tree import LeafEncoding
from repro.tasks.function import TaskFunction
from repro.tasks.domain import Domain
from repro.utils.bitmath import next_power_of_two, tree_height


def verify_sample_proof(
    proof: SampleProof,
    expected_index: int,
    root: bytes,
    n_leaves: int,
    domain: Domain,
    function: TaskFunction,
    hash_fn: HashFunction,
    leaf_encoding: LeafEncoding,
) -> SampleVerdict:
    """Run both Step-4 checks for one sample; return the verdict.

    The caller charges verification cost to its ledger (this function
    is pure protocol logic).
    """
    # Shape checks first: a malformed proof is rejected outright.
    if proof.index != expected_index:
        return SampleVerdict(
            index=expected_index,
            accepted=False,
            reason=RejectReason.MALFORMED_PROOF,
        )
    expected_height = tree_height(next_power_of_two(n_leaves))
    if proof.path.height != expected_height:
        return SampleVerdict(
            index=expected_index,
            accepted=False,
            reason=RejectReason.MALFORMED_PROOF,
        )
    if proof.path.leaf_index != expected_index:
        return SampleVerdict(
            index=expected_index,
            accepted=False,
            reason=RejectReason.MALFORMED_PROOF,
        )
    digest_size = hash_fn.digest_size
    if any(len(sibling) != digest_size for sibling in proof.path.siblings):
        return SampleVerdict(
            index=expected_index,
            accepted=False,
            reason=RejectReason.MALFORMED_PROOF,
        )

    # Check 1: is the claimed f(x) actually correct?
    x = domain[expected_index]
    if not function.verify(x, proof.claimed_result):
        return SampleVerdict(
            index=expected_index,
            accepted=False,
            reason=RejectReason.WRONG_RESULT,
        )

    # Check 2: was this exact value committed?  Λ(f(x), λ1..λH) == Φ(R)?
    reconstructed = proof.path.root_from_payload(proof.claimed_result, hash_fn)
    if reconstructed != root:
        return SampleVerdict(
            index=expected_index,
            accepted=False,
            reason=RejectReason.ROOT_MISMATCH,
        )

    return SampleVerdict(index=expected_index, accepted=True, reason=RejectReason.OK)
