"""Canonical wire codec: unsigned varints and length-prefixed bytes.

Protocol messages (commitments, sample challenges, proofs — see
:mod:`repro.core.protocol`) are serialized with this codec so the
simulated network (:mod:`repro.grid.network`) can account communication
costs in *actual bytes on the wire* rather than hand-waved O(·) terms.
The format is the LEB128-style varint used by protobuf: 7 payload bits
per byte, most-significant-bit set on every byte except the last.
"""

from __future__ import annotations

from repro.exceptions import CodecError


def encode_uint(value: int) -> bytes:
    """Encode a non-negative integer as a varint."""
    if value < 0:
        raise CodecError(f"cannot varint-encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_uint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint at ``offset``; return ``(value, next_offset)``."""
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 70:
            raise CodecError("varint too long (more than 10 bytes)")


def decode_uint(data: bytes) -> int:
    """Decode a varint occupying the whole of ``data``."""
    value, pos = read_uint(data, 0)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after varint")
    return value


def encode_bytes(payload: bytes) -> bytes:
    """Encode a byte string with a varint length prefix."""
    return encode_uint(len(payload)) + payload


def read_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a length-prefixed byte string at ``offset``."""
    length, pos = read_uint(data, offset)
    end = pos + length
    if end > len(data):
        raise CodecError(
            f"length prefix {length} exceeds remaining {len(data) - pos} bytes"
        )
    return data[pos:end], end


def decode_bytes(data: bytes) -> bytes:
    """Decode a length-prefixed byte string occupying all of ``data``."""
    payload, pos = read_bytes(data, 0)
    if pos != len(data):
        raise CodecError(f"{len(data) - pos} trailing bytes after payload")
    return payload


def encode_uint_list(values: list[int]) -> bytes:
    """Encode a list of non-negative integers (count, then varints)."""
    out = bytearray(encode_uint(len(values)))
    for value in values:
        out += encode_uint(value)
    return bytes(out)


def read_uint_list(data: bytes, offset: int = 0) -> tuple[list[int], int]:
    """Decode a list written by :func:`encode_uint_list`."""
    count, pos = read_uint(data, offset)
    values: list[int] = []
    for _ in range(count):
        value, pos = read_uint(data, pos)
        values.append(value)
    return values, pos


def encode_bytes_list(items: list[bytes]) -> bytes:
    """Encode a list of byte strings (count, then length-prefixed items)."""
    out = bytearray(encode_uint(len(items)))
    for item in items:
        out += encode_bytes(item)
    return bytes(out)


def read_bytes_list(data: bytes, offset: int = 0) -> tuple[list[bytes], int]:
    """Decode a list written by :func:`encode_bytes_list`."""
    count, pos = read_uint(data, offset)
    items: list[bytes] = []
    for _ in range(count):
        item, pos = read_bytes(data, pos)
        items.append(item)
    return items, pos
