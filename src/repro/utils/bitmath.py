"""Integer/tree geometry helpers used throughout the Merkle substrate.

A CBS Merkle tree (paper §3.1) is a *complete binary tree* over ``n``
leaves.  We pad the leaf level to the next power of two, so the tree
height is ``ceil(log2(n))`` and every internal level ``d`` holds
``2^d`` nodes (root at level 0, matching the paper's §3.3 convention
where "the root is at level 0").
"""

from __future__ import annotations


def is_power_of_two(n: int) -> bool:
    """Return ``True`` iff ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n`` must be positive)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return 1 << (n - 1).bit_length()


def ceil_log2(n: int) -> int:
    """``ceil(log2(n))`` for positive ``n`` (0 for ``n == 1``)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return (n - 1).bit_length()


def tree_height(n_leaves: int) -> int:
    """Height ``H`` of a complete binary tree over ``n_leaves`` leaves.

    The paper writes ``H = log |D|``; with padding, this is
    ``ceil(log2(n))``.  A single-leaf tree has height 0 (the leaf *is*
    the root).
    """
    return ceil_log2(n_leaves)


def sibling_index(index: int) -> int:
    """Index of the sibling of node ``index`` within its level."""
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return index ^ 1


def parent_index(index: int) -> int:
    """Index of the parent (one level up) of node ``index``."""
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return index >> 1


def level_size(height: int, level: int) -> int:
    """Number of nodes at ``level`` in a padded tree of ``height``.

    Level 0 is the root (1 node); level ``height`` is the (padded) leaf
    level with ``2^height`` nodes.
    """
    if not 0 <= level <= height:
        raise ValueError(f"level {level} outside [0, {height}]")
    return 1 << level
