"""Deterministic pseudo-random helpers keyed on byte strings.

The synthetic workloads (:mod:`repro.tasks.workloads`) need outputs that
are (a) deterministic given the input, (b) statistically well-spread and
(c) infeasible to predict without evaluating — i.e. a PRF.  We derive
everything from SHA-256, which is more than adequate for a simulation
substrate (the paper itself treats MD5/SHA as ideal one-way functions).

These helpers are *not* part of the verification schemes; the schemes
use the pluggable :mod:`repro.merkle.hashing` registry.  They exist so
that workload outputs and simulation coins are reproducible bit-for-bit
across runs and platforms.
"""

from __future__ import annotations

import hashlib


def prf_bytes(*parts: bytes, n_bytes: int = 32) -> bytes:
    """Return ``n_bytes`` of PRF output keyed on the given parts.

    Parts are length-prefixed before hashing so ``(b"ab", b"c")`` and
    ``(b"a", b"bc")`` produce unrelated streams.  Output longer than one
    digest is produced in counter mode.
    """
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    seed = hasher.digest()
    out = bytearray()
    counter = 0
    while len(out) < n_bytes:
        block = hashlib.sha256(seed + counter.to_bytes(8, "big")).digest()
        out += block
        counter += 1
    return bytes(out[:n_bytes])


def prf_int(*parts: bytes, bound: int) -> int:
    """A PRF-derived integer uniform on ``[0, bound)``.

    Uses rejection sampling over 64-bit draws so the distribution is
    exactly uniform for any ``bound`` up to 2**64.
    """
    if bound <= 0:
        raise ValueError(f"bound must be positive, got {bound}")
    limit = (1 << 64) - ((1 << 64) % bound)
    counter = 0
    while True:
        draw = int.from_bytes(
            prf_bytes(*parts, counter.to_bytes(8, "big"), n_bytes=8), "big"
        )
        if draw < limit:
            return draw % bound
        counter += 1


def prf_float(*parts: bytes) -> float:
    """A PRF-derived float uniform on ``[0, 1)`` with 53-bit precision."""
    draw = int.from_bytes(prf_bytes(*parts, n_bytes=8), "big") >> 11
    return draw / float(1 << 53)


def prf_coin(*parts: bytes, probability: float) -> bool:
    """A PRF-derived Bernoulli coin: ``True`` with given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    return prf_float(*parts) < probability


def prf_gauss(*parts: bytes, mean: float = 0.0, stdev: float = 1.0) -> float:
    """A PRF-derived Gaussian sample (Box–Muller on two PRF uniforms)."""
    import math

    u1 = prf_float(*parts, b"gauss-u1")
    u2 = prf_float(*parts, b"gauss-u2")
    # Guard against log(0); the PRF cannot return exactly 1.0.
    u1 = max(u1, 1e-300)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return mean + stdev * z
