"""Shared low-level utilities: wire codec, PRF helpers, tree geometry."""

from repro.utils.bitmath import (
    ceil_log2,
    is_power_of_two,
    next_power_of_two,
    tree_height,
)
from repro.utils.encoding import (
    decode_bytes,
    decode_uint,
    encode_bytes,
    encode_uint,
    read_bytes,
    read_uint,
)
from repro.utils.prf import (
    prf_bytes,
    prf_coin,
    prf_float,
    prf_int,
)

__all__ = [
    "ceil_log2",
    "is_power_of_two",
    "next_power_of_two",
    "tree_height",
    "encode_uint",
    "decode_uint",
    "encode_bytes",
    "decode_bytes",
    "read_uint",
    "read_bytes",
    "prf_bytes",
    "prf_int",
    "prf_float",
    "prf_coin",
]
