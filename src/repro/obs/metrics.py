"""Labelled metrics registry: counters, gauges, log-bucket histograms.

The planes above (service supervisor, cluster coordinator, worker
daemons, the net transport) each used to keep private ad-hoc counter
dicts with no shared schema and no histograms.  This module is the one
substrate they all record into: a thread-safe
:class:`MetricsRegistry` of labelled :class:`Counter`, :class:`Gauge`
and :class:`Histogram` instruments that can be snapshotted as a plain
dict (for the service ``stats`` frame and the CLI) or rendered as
Prometheus text exposition (for the ``--metrics-port`` endpoint).

Dependency-free by design — no prometheus_client, no third-party
anything — and cheap enough to leave on: a disabled registry turns
every record call into one attribute check, and instruments are
deliberately kept *out* of the core scheme hot loops (leaf hashing,
Merkle folding); only plane boundaries (frames, chunks, submissions)
are metered.

Two deployment shapes, one class:

* **Per-instance registries** (the default for ``SupervisorServer``,
  ``ClusterExecutor``, ``SessionStore``) keep tests and embedded uses
  exactly-counted and isolated from each other.
* **The process-global default registry** (:func:`default_registry`)
  is what the CLI entry points inject everywhere, so one scrape of a
  ``serve`` or ``worker`` process sees every subsystem at once.

Label cardinality is capped per metric: past
``MAX_LABEL_SETS_PER_METRIC`` distinct label combinations, further
novel combinations collapse into a single ``"~overflow"`` series so a
mis-labelled hot path (e.g. a per-task id used as a label) degrades
into one bounded series instead of an unbounded memory leak.
"""

from __future__ import annotations

import contextlib
import math
import re
import threading
import time
from typing import Callable, Iterable, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MAX_LABEL_SETS_PER_METRIC",
    "OVERFLOW_LABEL_VALUE",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "log_buckets",
    "default_registry",
    "install_process_metrics",
]

# Past this many distinct label sets on one metric, new combinations
# collapse into the single overflow series below.
MAX_LABEL_SETS_PER_METRIC = 256
OVERFLOW_LABEL_VALUE = "~overflow"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Fixed log-scale bucket boundaries from ``lo`` up through ``hi``.

    Boundaries are spaced ``per_decade`` per power of ten, rounded to
    a stable short decimal so renderings are reproducible across
    platforms.  ``+Inf`` is implicit (every histogram gets it).
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    bounds: list[float] = []
    exp = math.floor(math.log10(lo) * per_decade)
    while True:
        bound = round(10.0 ** (exp / per_decade), 12)
        if bound > hi * (1 + 1e-9):
            break
        if bound >= lo * (1 - 1e-9):
            bounds.append(bound)
        exp += 1
    return tuple(bounds)


# Latencies from 100us to 10s; payload/chunk sizes from 64B to 64MiB.
LATENCY_BUCKETS = log_buckets(1e-4, 10.0, per_decade=3)
SIZE_BUCKETS = tuple(float(64 << (3 * i)) for i in range(8))


def _validate_labels(
    labelnames: Sequence[str], labels: Mapping[str, str]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match "
            f"declared labelnames {sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _Child:
    """One (metric, label-values) series.  All mutation is locked."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0


class _CounterChild(_Child):
    __slots__ = ("enabled_ref",)

    def __init__(self, enabled_ref: "MetricsRegistry") -> None:
        super().__init__()
        self.enabled_ref = enabled_ref

    def inc(self, amount: float = 1.0) -> None:
        if not self.enabled_ref.enabled:
            return
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("enabled_ref",)

    def __init__(self, enabled_ref: "MetricsRegistry") -> None:
        super().__init__()
        self.enabled_ref = enabled_ref

    def set(self, value: float) -> None:
        if not self.enabled_ref.enabled:
            return
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self.enabled_ref.enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild:
    __slots__ = ("_lock", "enabled_ref", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self, enabled_ref: "MetricsRegistry", bounds: tuple[float, ...]
    ) -> None:
        self._lock = threading.Lock()
        self.enabled_ref = enabled_ref
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self.enabled_ref.enabled:
            return
        value = float(value)
        # Linear scan: bucket lists are short (<= ~20) and fixed, and
        # a scan beats bisect's call overhead at that size.
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.bucket_counts[index] += 1
            self.sum += value
            self.count += 1


class _Metric:
    """A named instrument family; ``labels()`` vends per-series children."""

    kind = "untyped"
    _child_cls: type = _Child

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str],
    ) -> None:
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # Label-less metrics are their own single series.
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self):
        return self._child_cls(self.registry)

    def labels(self, **labels: str):
        key = _validate_labels(self.labelnames, labels)
        child = self._children.get(key)
        if child is not None:
            return child
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= MAX_LABEL_SETS_PER_METRIC:
                    key = (OVERFLOW_LABEL_VALUE,) * len(self.labelnames)
                    child = self._children.get(key)
                    if child is not None:
                        return child
                child = self._make_child()
                self._children[key] = child
        return child

    # Convenience: label-less metrics can be recorded on directly.
    def _require_default(self):
        if self._default is None:
            raise ValueError(
                f"metric {self.name!r} has labels {self.labelnames}; "
                f"call .labels(...) first"
            )
        return self._default

    def series(self) -> list[tuple[dict[str, str], object]]:
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]


class Counter(_Metric):
    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    @property
    def value(self) -> float:
        return self._require_default().value


class Gauge(_Metric):
    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float) -> None:
        self._require_default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._require_default().dec(amount)

    @property
    def value(self) -> float:
        return self._require_default().value


class Histogram(_Metric):
    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float],
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r} has duplicate buckets")
        self.bounds = bounds
        super().__init__(registry, name, help, labelnames)

    def _make_child(self):
        return _HistogramChild(self.registry, self.bounds)

    def observe(self, value: float) -> None:
        self._require_default().observe(value)


def _escape_label_value(value: str) -> str:
    # Exposition format 0.0.4: backslash FIRST (it is the escape
    # character), then double-quote, then newline.
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    # HELP lines escape backslash and newline only (quotes are legal
    # there) — an unescaped newline would split the line and corrupt
    # the whole exposition.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in labels.items()
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """A process- or instance-scoped family of named instruments.

    ``counter``/``gauge``/``histogram`` are get-or-create: calling
    twice with the same name returns the same instrument, and calling
    with a conflicting type or label set raises — two subsystems
    cannot silently fight over one name.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}
        self._collect_hooks: list[Callable[[], None]] = []

    def add_collect_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` at the start of every snapshot/render.

        The pull-model escape hatch for values that are only
        meaningful at scrape time (uptime, queue depths computed from
        another structure).  Hooks must be cheap and exception-safe;
        a raising hook is suppressed rather than corrupting a scrape.
        """
        with self._lock:
            self._collect_hooks.append(hook)

    def _run_collect_hooks(self) -> None:
        with self._lock:
            hooks = list(self._collect_hooks)
        for hook in hooks:
            with contextlib.suppress(Exception):
                hook()

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------

    def _get_or_create(
        self, cls: type, name: str, help: str, labelnames: Sequence[str], **kw
    ):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if type(metric) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {cls.kind}"
                    )
                if metric.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{metric.labelnames}, not {tuple(labelnames)}"
                    )
                return metric
            metric = cls(self, name, help, labelnames, **kw)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every series, JSON-serializable as-is."""
        self._run_collect_hooks()
        out: dict[str, dict] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            values = []
            for labels, child in metric.series():
                if isinstance(child, _HistogramChild):
                    with child._lock:
                        values.append(
                            {
                                "labels": labels,
                                "buckets": [
                                    [bound, count]
                                    for bound, count in zip(
                                        child.bounds, child.bucket_counts
                                    )
                                ]
                                + [["+Inf", child.bucket_counts[-1]]],
                                "sum": child.sum,
                                "count": child.count,
                            }
                        )
                else:
                    values.append({"labels": labels, "value": child.value})
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "values": values,
            }
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        self._run_collect_hooks()
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        for metric in metrics:
            if metric.help:
                lines.append(
                    f"# HELP {metric.name} {_escape_help(metric.help)}"
                )
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labels, child in metric.series():
                if isinstance(child, _HistogramChild):
                    with child._lock:
                        counts = list(child.bucket_counts)
                        total = child.count
                        summed = child.sum
                    cumulative = 0
                    for bound, count in zip(child.bounds, counts):
                        cumulative += count
                        le_labels = dict(labels)
                        le_labels["le"] = _format_value(bound)
                        lines.append(
                            f"{metric.name}_bucket{_label_str(le_labels)} "
                            f"{cumulative}"
                        )
                    inf_labels = dict(labels)
                    inf_labels["le"] = "+Inf"
                    lines.append(
                        f"{metric.name}_bucket{_label_str(inf_labels)} {total}"
                    )
                    lines.append(
                        f"{metric.name}_sum{_label_str(labels)} "
                        f"{_format_value(summed)}"
                    )
                    lines.append(
                        f"{metric.name}_count{_label_str(labels)} {total}"
                    )
                else:
                    lines.append(
                        f"{metric.name}{_label_str(labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------
    # Introspection helpers (tests, compatibility views)
    # ------------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of one counter/gauge series (0.0 if unseen)."""
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        key = _validate_labels(metric.labelnames, labels)
        child = metric._children.get(key)
        if child is None:
            return 0.0
        return child.value

    def sum_values(self, name: str, **fixed: str) -> float:
        """Sum of all series of ``name`` matching the given label subset."""
        with self._lock:
            metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        total = 0.0
        for labels, child in metric.series():
            if all(labels.get(k) == v for k, v in fixed.items()):
                if isinstance(child, _HistogramChild):
                    total += child.count
                else:
                    total += child.value
        return total


_default_registry: MetricsRegistry | None = None
_default_lock = threading.Lock()

# Uptime is measured from module import (= process start for every
# CLI entry point; close enough for the embedded case).
_PROCESS_START_MONOTONIC = time.monotonic()


def install_process_metrics(registry: MetricsRegistry) -> None:
    """Register process-identity metrics on ``registry``.

    ``repro_build_info`` is the standard Prometheus identity idiom: a
    constant-1 gauge whose labels carry the package version and the
    Python runtime, so every scrape says *what* is answering.
    ``repro_uptime_seconds`` is refreshed by a collect hook at scrape
    time, and therefore also lands in ``/stats`` snapshots and
    ``repro.cli stats --json``.
    """
    import platform

    from repro._version import __version__

    build = registry.gauge(
        "repro_build_info",
        "Build/runtime identity; the value is always 1",
        ("version", "python"),
    )
    build.labels(version=__version__, python=platform.python_version()).set(
        1.0
    )
    uptime = registry.gauge(
        "repro_uptime_seconds",
        "Seconds since this process imported repro.obs.metrics",
    )
    registry.add_collect_hook(
        lambda: uptime.set(time.monotonic() - _PROCESS_START_MONOTONIC)
    )


def default_registry() -> MetricsRegistry:
    """The process-global registry the CLI entry points inject.

    Created on first use with the process-identity metrics installed,
    so any scrape of a CLI process carries ``repro_build_info`` and a
    live ``repro_uptime_seconds`` without per-entry-point wiring.
    """
    global _default_registry
    if _default_registry is None:
        with _default_lock:
            if _default_registry is None:
                registry = MetricsRegistry()
                install_process_metrics(registry)
                _default_registry = registry
    return _default_registry
