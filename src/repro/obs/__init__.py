"""Unified observability plane: metrics, traces, structured logs.

Before this package each plane kept private ad-hoc counters
(``ServiceStats``, ``SessionStore.stats``, the coordinator's stats
dict) with no shared schema, no histograms, and no way to follow one
population's chunk from coordinator dispatch through worker execution
to result acceptance.  This is the one substrate they all use now:

* :mod:`repro.obs.metrics` — thread-safe labelled counters, gauges and
  log-bucket histograms in a :class:`MetricsRegistry`; per-instance
  registries for tests/embedding, one process-global default registry
  (:func:`default_registry`) for the CLI entry points.
* :mod:`repro.obs.trace` — ``trace_id``/``span_id`` minting and
  contextvars binding; the ids ride optional wire fields so old peers
  ignore them.
* :mod:`repro.obs.logging` — structured (optionally JSON) log records
  under the ``repro`` logger hierarchy, NullHandler by default,
  trace ids stamped automatically.
* :mod:`repro.obs.spans` — real timed spans (:class:`Span`,
  :class:`SpanBuffer`, the :func:`span` context manager) that compose
  with ``bind_trace`` and ride result envelopes cross-process, plus
  the :func:`render_waterfall` ASCII timeline.
* :mod:`repro.obs.recorder` — the per-process flight recorder: a
  bounded ring of recent events + spans, dumped as one JSON artifact
  on crash, SIGUSR1, or clean shutdown.
* :mod:`repro.obs.health` — liveness/readiness aggregation
  (:class:`HealthState` and per-plane probes).
* :mod:`repro.obs.http` — the ``--metrics-port`` scrape endpoint
  (``/metrics`` Prometheus text, ``/stats`` JSON, ``/healthz`` and
  ``/readyz`` probes).

Layering rule: :mod:`repro.obs` imports nothing from any other
``repro`` subpackage except nothing at all — it sits below
:mod:`repro.net` and everything else stands on it.
"""

from repro.obs.health import (
    EventLoopLagProbe,
    HealthState,
    gauge_max_probe,
    gauge_min_probe,
)
from repro.obs.http import MetricsServer
from repro.obs.logging import (
    JsonFormatter,
    TraceContextFilter,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MAX_LABEL_SETS_PER_METRIC,
    OVERFLOW_LABEL_VALUE,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    install_process_metrics,
    log_buckets,
)
from repro.obs.recorder import FlightRecorder, install_flight_recorder
from repro.obs.spans import (
    MAX_WIRE_SPANS,
    Span,
    SpanBuffer,
    default_span_buffer,
    render_waterfall,
    span,
    validate_wire_span,
    validate_wire_spans,
)
from repro.obs.trace import (
    MAX_TRACE_ID_LEN,
    bind_trace,
    current_span,
    current_trace,
    new_span_id,
    new_trace_id,
)

__all__ = [
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "default_registry",
    "log_buckets",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "MAX_LABEL_SETS_PER_METRIC",
    "OVERFLOW_LABEL_VALUE",
    "install_process_metrics",
    # spans
    "Span",
    "SpanBuffer",
    "span",
    "default_span_buffer",
    "render_waterfall",
    "validate_wire_span",
    "validate_wire_spans",
    "MAX_WIRE_SPANS",
    # recorder
    "FlightRecorder",
    "install_flight_recorder",
    # health
    "HealthState",
    "EventLoopLagProbe",
    "gauge_max_probe",
    "gauge_min_probe",
    # trace
    "new_trace_id",
    "new_span_id",
    "bind_trace",
    "current_trace",
    "current_span",
    "MAX_TRACE_ID_LEN",
    # logging
    "configure_logging",
    "get_logger",
    "log_event",
    "TraceContextFilter",
    "JsonFormatter",
    # http
    "MetricsServer",
]
