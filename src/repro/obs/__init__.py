"""Unified observability plane: metrics, traces, structured logs.

Before this package each plane kept private ad-hoc counters
(``ServiceStats``, ``SessionStore.stats``, the coordinator's stats
dict) with no shared schema, no histograms, and no way to follow one
population's chunk from coordinator dispatch through worker execution
to result acceptance.  This is the one substrate they all use now:

* :mod:`repro.obs.metrics` — thread-safe labelled counters, gauges and
  log-bucket histograms in a :class:`MetricsRegistry`; per-instance
  registries for tests/embedding, one process-global default registry
  (:func:`default_registry`) for the CLI entry points.
* :mod:`repro.obs.trace` — ``trace_id``/``span_id`` minting and
  contextvars binding; the ids ride optional wire fields so old peers
  ignore them.
* :mod:`repro.obs.logging` — structured (optionally JSON) log records
  under the ``repro`` logger hierarchy, NullHandler by default,
  trace ids stamped automatically.
* :mod:`repro.obs.http` — the ``--metrics-port`` scrape endpoint
  (``/metrics`` Prometheus text, ``/stats`` JSON).

Layering rule: :mod:`repro.obs` imports nothing from any other
``repro`` subpackage except nothing at all — it sits below
:mod:`repro.net` and everything else stands on it.
"""

from repro.obs.http import MetricsServer
from repro.obs.logging import (
    JsonFormatter,
    TraceContextFilter,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    LATENCY_BUCKETS,
    MAX_LABEL_SETS_PER_METRIC,
    OVERFLOW_LABEL_VALUE,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    log_buckets,
)
from repro.obs.trace import (
    MAX_TRACE_ID_LEN,
    bind_trace,
    current_span,
    current_trace,
    new_span_id,
    new_trace_id,
)

__all__ = [
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "default_registry",
    "log_buckets",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "MAX_LABEL_SETS_PER_METRIC",
    "OVERFLOW_LABEL_VALUE",
    # trace
    "new_trace_id",
    "new_span_id",
    "bind_trace",
    "current_trace",
    "current_span",
    "MAX_TRACE_ID_LEN",
    # logging
    "configure_logging",
    "get_logger",
    "log_event",
    "TraceContextFilter",
    "JsonFormatter",
    # http
    "MetricsServer",
]
