"""Flight recorder: a bounded ring of recent events + spans per process.

When a worker dies mid-epoch or a supervisor is OOM-killed at 3am,
the logs that explain it are usually on a box nobody can reach and at
a DEBUG level nobody had enabled.  The flight recorder keeps the last
``capacity`` structured events (captured off the ``repro`` logger
hierarchy, so every existing ``log_event`` call feeds it for free)
plus the completed spans of its :class:`~repro.obs.spans.SpanBuffer`,
and dumps them as **one self-contained JSON artifact**:

* on unhandled crash (a chained ``sys.excepthook``),
* on ``SIGUSR1`` (post-mortem a live process without stopping it),
* on clean shutdown when serve/worker got ``--flight-dir``.

The dump is the offline input to ``repro.cli trace view --dump`` — a
post-mortem carries its own timeline.
"""

from __future__ import annotations

import collections
import json
import logging
import os
import re
import signal
import sys
import threading
import time
from typing import Any

from repro.obs.spans import SpanBuffer, default_span_buffer

__all__ = ["FlightRecorder", "install_flight_recorder"]

_SAFE_NAME_RE = re.compile(r"[^A-Za-z0-9._-]+")

# Lazy errors counter (PR 7 rule: swallowed exceptions are counted).
# Incrementing a counter emits no log records, so this is safe to call
# from inside a logging handler without recursion.
_errors = None


def _errors_counter():
    global _errors
    if _errors is None:
        from repro.obs.metrics import default_registry

        _errors = default_registry().counter(
            "repro_errors_total",
            "Errors that dropped a connection or request, by site",
            ("site",),
        )
    return _errors

#: Keys copied off captured log records when present (the structured
#: fields ``log_event`` and ``TraceContextFilter`` stamp).
_RECORD_FIELDS = ("event", "trace_id", "span_id")


class _RingHandler(logging.Handler):
    """Feeds every ``repro.*`` log record into the recorder ring."""

    def __init__(self, recorder: "FlightRecorder") -> None:
        super().__init__(level=logging.DEBUG)
        self._recorder = recorder

    def emit(self, record: logging.LogRecord) -> None:
        try:
            entry: dict[str, Any] = {
                "ts": record.created,
                "level": record.levelname,
                "logger": record.name,
                "message": record.getMessage(),
            }
            for key in _RECORD_FIELDS:
                value = getattr(record, key, None)
                if value is not None:
                    entry[key] = value
            self._recorder._append(entry)
        except Exception:
            # A broken record must never kill the app — but the drop is
            # counted (logging it from inside a log handler would risk
            # recursion; a counter inc cannot).
            _errors_counter().labels(site="flight.ring_append").inc()


class FlightRecorder:
    """Bounded event ring + span snapshot, dumped as one JSON file."""

    def __init__(
        self,
        process: str = "",
        capacity: int = 1024,
        span_buffer: SpanBuffer | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.process = process or f"pid{os.getpid()}"
        self.capacity = capacity
        self.span_buffer = (
            span_buffer if span_buffer is not None else default_span_buffer()
        )
        self._lock = threading.Lock()
        self._events: collections.deque[dict] = collections.deque(
            maxlen=capacity
        )
        self._handler: _RingHandler | None = None
        self._logger_name = "repro"

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def _append(self, entry: dict) -> None:
        with self._lock:
            self._events.append(entry)

    def record(self, event: str, **fields: Any) -> None:
        """Record one structured event directly (no logger involved)."""
        self._append({"ts": time.time(), "event": event, **fields})

    def attach(self, logger_name: str = "repro") -> None:
        """Capture the structured log stream into the ring."""
        # Under the lock: two threads racing attach() would otherwise
        # both pass the None check and leave an orphaned handler on the
        # logger forever.  addHandler takes logging's module lock, a
        # different lock — no ordering cycle with _append.
        with self._lock:
            if self._handler is not None:
                return
            handler = _RingHandler(self)
            self._handler = handler
            self._logger_name = logger_name
        logging.getLogger(logger_name).addHandler(handler)

    def detach(self) -> None:
        with self._lock:
            handler, self._handler = self._handler, None
            logger_name = self._logger_name
        if handler is not None:
            logging.getLogger(logger_name).removeHandler(handler)

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------

    def dump(self, reason: str = "manual") -> dict:
        """The artifact as a dict: identity, recent events, spans."""
        with self._lock:
            events = list(self._events)
        return {
            "kind": "repro-flight-recorder",
            "version": 1,
            "process": self.process,
            "pid": os.getpid(),
            "reason": reason,
            "dumped_at": time.time(),
            "events": events,
            "spans": [s.to_wire() for s in self.span_buffer.snapshot()],
        }

    def dump_to_dir(self, directory: str, reason: str = "manual") -> str:
        """Write the artifact under ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        safe = _SAFE_NAME_RE.sub("-", self.process) or "proc"
        name = f"flight-{safe}-{os.getpid()}-{int(time.time())}-{reason}.json"
        path = os.path.join(directory, name)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.dump(reason), fh, indent=2, default=str)
            fh.write("\n")
        return path


def install_flight_recorder(
    recorder: FlightRecorder,
    flight_dir: str,
    *,
    on_signal: bool = True,
) -> None:
    """Arm crash and SIGUSR1 dumps for this process.

    Chains ``sys.excepthook`` (the original still runs, so tracebacks
    keep printing) and, when the platform has ``SIGUSR1`` and we are
    on the main thread, installs a handler that snapshots the ring
    without stopping the process.  Dump failures are swallowed — the
    recorder must never turn a crash into a different crash.
    """
    previous_hook = sys.excepthook

    def _crash_hook(exc_type, exc, tb) -> None:
        try:
            recorder.record(
                "unhandled_crash",
                exc_type=exc_type.__name__,
                message=str(exc),
            )
            recorder.dump_to_dir(flight_dir, reason="crash")
        except Exception as dump_exc:
            # The recorder must never turn a crash into a different
            # crash: note the failure on stderr (we are already past
            # logging) and let the original traceback print.
            print(
                f"flight recorder crash dump failed: {dump_exc}",
                file=sys.stderr,
            )
        previous_hook(exc_type, exc, tb)

    sys.excepthook = _crash_hook

    if on_signal and hasattr(signal, "SIGUSR1"):
        def _signal_dump(signum, frame) -> None:
            try:
                recorder.dump_to_dir(flight_dir, reason="sigusr1")
            except Exception:
                # Signal context: no logging, no allocation-heavy work
                # — count the failed dump and return.
                _errors_counter().labels(site="flight.sigusr1_dump").inc()

        try:
            signal.signal(signal.SIGUSR1, _signal_dump)
        except ValueError:
            pass  # not the main thread; crash + shutdown dumps still work
