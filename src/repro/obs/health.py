"""Liveness/readiness plane: the answers a load balancer asks for.

The ROADMAP's admission-control direction fronts the supervisor with
an LB/orchestrator; both need machine-readable answers to two distinct
questions:

* **liveness** (``/healthz``) — "is this process running at all?"
  Always 200 while the HTTP thread can answer; restarts are the
  orchestrator's call, not ours.
* **readiness** (``/readyz``) — "should traffic be routed here *now*?"
  A :class:`HealthState` aggregates a drain flag plus named per-plane
  probes (event-loop lag, session-store pressure, worker-pool
  liveness, coordinator stall watchdog); any failing probe or an
  active drain flips the endpoint to 503 with a JSON body explaining
  which probe and why.

Probes are plain callables returning ``(ok, detail_dict)``; a probe
that raises reports not-ready with the error in its detail rather
than breaking the scrape.  ``set_ready(False, "draining")`` is called
by serve/worker on SIGTERM *before* the graceful drain starts, so an
LB observes the 503 and stops routing while in-flight work completes.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Mapping

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EventLoopLagProbe",
    "HealthState",
    "gauge_max_probe",
    "gauge_min_probe",
]

#: A probe returns (ok, detail).  Detail must be JSON-serializable.
Probe = Callable[[], tuple[bool, Mapping[str, Any]]]


class HealthState:
    """Thread-safe readiness aggregate: drain flag + named probes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = True
        self._reason = ""
        self._probes: dict[str, Probe] = {}

    def add_probe(self, name: str, probe: Probe) -> None:
        with self._lock:
            self._probes[name] = probe

    def set_ready(self, ready: bool, reason: str = "") -> None:
        """Flip the administrative readiness flag (drain control)."""
        with self._lock:
            self._ready = bool(ready)
            self._reason = reason

    @property
    def draining(self) -> bool:
        with self._lock:
            return not self._ready

    def liveness(self) -> dict:
        return {"status": "alive"}

    def readiness(self) -> tuple[bool, dict]:
        """(ready, detail): ready iff not draining and every probe ok."""
        with self._lock:
            ready = self._ready
            reason = self._reason
            probes = list(self._probes.items())
        detail: dict[str, Any] = {"probes": {}}
        if not ready and reason:
            detail["reason"] = reason
        for name, probe in probes:
            try:
                ok, probe_detail = probe()
            except Exception as exc:
                ok, probe_detail = False, {"error": repr(exc)}
            detail["probes"][name] = {"ok": bool(ok), **dict(probe_detail)}
            ready = ready and bool(ok)
        detail["ready"] = ready
        return ready, detail


class EventLoopLagProbe:
    """Readiness probe + sampler for asyncio event-loop lag.

    :meth:`run` is an awaitable the owning loop schedules as a task:
    it sleeps ``interval_s`` and measures how late the wakeup was —
    the canonical saturation signal for a single-loop server.  The
    probe itself is synchronous (called from the metrics HTTP thread)
    and reads the last sample.
    """

    def __init__(
        self,
        threshold_s: float = 1.0,
        interval_s: float = 0.25,
        gauge: Any = None,
    ) -> None:
        self.threshold_s = threshold_s
        self.interval_s = interval_s
        self.gauge = gauge
        self.lag_s = 0.0

    def __call__(self) -> tuple[bool, dict]:
        return (
            self.lag_s <= self.threshold_s,
            {"lag_s": round(self.lag_s, 6), "threshold_s": self.threshold_s},
        )

    async def run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.interval_s)
            self.lag_s = max(0.0, loop.time() - before - self.interval_s)
            if self.gauge is not None:
                self.gauge.set(self.lag_s)


def gauge_max_probe(
    registry: MetricsRegistry,
    name: str,
    threshold: float,
    **labels: str,
) -> Probe:
    """Ready while a gauge/counter series stays at or below a bound.

    The coordinator stall watchdog uses this: the monitor task keeps
    ``repro_cluster_stall_seconds`` fresh, and readiness fails once
    the age of the last scheduler progress exceeds the threshold.
    """

    def probe() -> tuple[bool, dict]:
        value = registry.value(name, **labels)
        return value <= threshold, {"value": value, "max": threshold}

    return probe


def gauge_min_probe(
    registry: MetricsRegistry,
    name: str,
    minimum: float,
    **labels: str,
) -> Probe:
    """Ready while a gauge/counter series stays at or above a floor
    (worker-pool liveness: ``repro_cluster_workers_live >= 1``)."""

    def probe() -> tuple[bool, dict]:
        value = registry.value(name, **labels)
        return value >= minimum, {"value": value, "min": minimum}

    return probe
