"""Trace contexts: follow one population's chunk across three processes.

A ``trace_id`` is minted once per population (or per loadgen
participant session) and a ``span_id`` per unit of work — one cluster
chunk, one service submission round.  Both ride as *optional* fields
in the existing wire envelopes (service JSON frames, cluster
job/result envelopes), so old peers simply ignore them, and both are
bound into :mod:`contextvars` so every structured log record emitted
while a chunk executes — coordinator dispatch, worker execution,
result acceptance — carries the same ids without any plumbing through
intermediate call signatures.

Ids are short hex tokens (not W3C traceparent): 16 hex chars for
traces, 8 for spans, random via :mod:`secrets`.  Enough entropy to be
unique within any realistic run, short enough to read in a log line.
"""

from __future__ import annotations

import contextlib
import contextvars
import secrets
from typing import Iterator

__all__ = [
    "MAX_TRACE_ID_LEN",
    "new_trace_id",
    "new_span_id",
    "bind_trace",
    "current_trace",
    "current_span",
]

# Wire validation cap: anything longer than this in a tid/sid field is
# a protocol violation, not a trace id.
MAX_TRACE_ID_LEN = 64

_trace_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_trace_id", default=None
)
_span_id: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_span_id", default=None
)


def new_trace_id() -> str:
    """Fresh 64-bit trace id, hex-encoded."""
    return secrets.token_hex(8)


def new_span_id() -> str:
    """Fresh 32-bit span id, hex-encoded."""
    return secrets.token_hex(4)


def current_trace() -> str | None:
    """The trace id bound to the current context, if any."""
    return _trace_id.get()


def current_span() -> str | None:
    """The span id bound to the current context, if any."""
    return _span_id.get()


@contextlib.contextmanager
def bind_trace(
    trace_id: str | None, span_id: str | None = None
) -> Iterator[None]:
    """Bind trace/span ids for the dynamic extent of a block.

    ``None`` for either id leaves that slot unbound (records emitted
    inside simply omit the field).  Bindings nest and restore on exit,
    so a worker thread serving chunks from different populations never
    leaks one chunk's ids into the next.
    """
    trace_token = _trace_id.set(trace_id)
    span_token = _span_id.set(span_id)
    try:
        yield
    finally:
        _span_id.reset(span_token)
        _trace_id.reset(trace_token)
