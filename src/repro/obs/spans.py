"""Timed spans: the second story of the trace plane.

PR 7's :mod:`repro.obs.trace` propagates trace/span *ids* through
frames and job envelopes — enough to grep one chunk's timeline out of
DEBUG logs, not enough to see it.  This module records the timeline
itself: a :class:`Span` is one named, timed operation (trace id, span
id, parent id, monotonic + wall-clock start/end, attributes, status)
and a :class:`SpanBuffer` is the bounded thread-safe ring every
process records completed spans into.

Spans are created with the :func:`span` context manager, which
composes with :func:`repro.obs.trace.bind_trace`: the current trace id
is inherited (or minted for a root span), the current span id becomes
the parent, and the new span id is bound for the duration of the block
so nested spans and log records chain correctly.

Cross-process spans travel as plain dicts (:meth:`Span.to_wire` /
:func:`validate_wire_span`) attached to cluster result envelopes —
optional, size-capped, junk-rejected at the codec like ``tid``/``sid``
— so the coordinator can assemble one distributed waterfall per trace
and :func:`render_waterfall` can draw it without touching a log file.

Recording is deliberately *boundary-grained*: one span per chunk /
map / submission, never per item, and only when a trace is bound on
the hot engine path — ``bench_obs_overhead.py`` gates the cost.
"""

from __future__ import annotations

import collections
import contextlib
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.trace import (
    MAX_TRACE_ID_LEN,
    bind_trace,
    current_span,
    current_trace,
    new_span_id,
    new_trace_id,
)

__all__ = [
    "MAX_SPAN_ATTRS",
    "MAX_SPAN_ATTR_KEY_LEN",
    "MAX_SPAN_ATTR_STR_LEN",
    "MAX_SPAN_NAME_LEN",
    "MAX_WIRE_SPANS",
    "Span",
    "SpanBuffer",
    "default_span_buffer",
    "render_waterfall",
    "span",
    "validate_wire_span",
    "validate_wire_spans",
]

# Wire validity window for span payloads riding result envelopes —
# the same philosophy as MAX_TRACE_ID_LEN for tid/sid: a hostile or
# buggy peer can at worst make us hold a few KiB of strings.
MAX_WIRE_SPANS = 32
MAX_SPAN_NAME_LEN = 120
MAX_SPAN_STATUS_LEN = 120
MAX_SPAN_ATTRS = 16
MAX_SPAN_ATTR_KEY_LEN = 64
MAX_SPAN_ATTR_STR_LEN = 256

#: Default capacity of the process-global buffer: enough for the
#: recent-history window an operator actually asks about, bounded so
#: an unscraped long-lived process cannot grow without limit.
DEFAULT_SPAN_BUFFER_CAPACITY = 4096


@dataclass
class Span:
    """One named, timed operation within a trace.

    ``start_mono``/``end_mono`` carry the authoritative duration
    (immune to wall-clock steps); ``start_wall``/``end_wall`` place
    the span on a cross-process timeline.  Spans decoded from the
    wire only have wall times — their monotonic fields are rebased so
    :attr:`duration_s` still answers from the wall-clock interval.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_wall: float
    start_mono: float
    end_wall: float | None = None
    end_mono: float | None = None
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def begin(
        cls,
        name: str,
        *,
        trace_id: str | None = None,
        parent_id: str | None = None,
        span_id: str | None = None,
    ) -> "Span":
        """Open a span now; ids default from the bound trace context."""
        return cls(
            trace_id=trace_id or current_trace() or new_trace_id(),
            span_id=span_id or new_span_id(),
            parent_id=parent_id if parent_id is not None else current_span(),
            name=name,
            start_wall=time.time(),
            start_mono=time.monotonic(),
        )

    def finish(self, status: str = "ok", **attributes: Any) -> "Span":
        """Close the span (idempotent); returns self for chaining."""
        if self.end_mono is None:
            self.end_mono = time.monotonic()
            self.end_wall = time.time()
        self.status = status
        if attributes:
            self.attributes.update(attributes)
        return self

    @property
    def duration_s(self) -> float:
        if self.end_mono is not None:
            return max(0.0, self.end_mono - self.start_mono)
        return 0.0

    # ------------------------------------------------------------------
    # Wire / JSON representation
    # ------------------------------------------------------------------

    def to_wire(self) -> dict:
        """Compact JSON-safe dict (the ``sp`` wire field element)."""
        out: dict[str, Any] = {
            "tid": self.trace_id,
            "sid": self.span_id,
            "name": self.name,
            "ts": self.start_wall,
            "dur": self.duration_s,
        }
        if self.parent_id is not None:
            out["pid"] = self.parent_id
        if self.status != "ok":
            out["st"] = self.status
        if self.attributes:
            out["attrs"] = dict(self.attributes)
        return out

    @classmethod
    def from_wire(cls, obj: Mapping[str, Any]) -> "Span":
        """Rebuild a span from a validated wire dict.

        Monotonic fields are rebased onto the wall interval — a
        decoded span only answers "when and for how long", never
        "relative to this process's monotonic clock".
        """
        start = float(obj["ts"])
        duration = float(obj["dur"])
        return cls(
            trace_id=obj["tid"],
            span_id=obj["sid"],
            parent_id=obj.get("pid"),
            name=obj["name"],
            start_wall=start,
            start_mono=0.0,
            end_wall=start + duration,
            end_mono=duration,
            status=obj.get("st", "ok"),
            attributes=dict(obj.get("attrs", {})),
        )


def _check_id(value: Any, key: str, *, required: bool) -> str | None:
    if value is None:
        if required:
            raise ValueError(f"span field {key!r} missing")
        return None
    if not isinstance(value, str) or not value:
        raise ValueError(f"span field {key!r} must be a non-empty string")
    if len(value) > MAX_TRACE_ID_LEN:
        raise ValueError(
            f"span field {key!r} exceeds {MAX_TRACE_ID_LEN} chars"
        )
    return value


def validate_wire_span(obj: Any) -> dict:
    """Validate one wire span dict; raises ``ValueError`` on junk.

    The validity window mirrors the codec's ``tid``/``sid`` policy:
    everything bounded, nothing executable, unknown keys rejected so a
    frame cannot smuggle arbitrary structure under ``sp``.
    """
    if not isinstance(obj, dict):
        raise ValueError("wire span must be an object")
    unknown = set(obj) - {"tid", "sid", "pid", "name", "st", "ts", "dur",
                          "attrs"}
    if unknown:
        raise ValueError(f"wire span has unknown keys {sorted(unknown)}")
    _check_id(obj.get("tid"), "tid", required=True)
    _check_id(obj.get("sid"), "sid", required=True)
    _check_id(obj.get("pid"), "pid", required=False)
    name = obj.get("name")
    if (
        not isinstance(name, str)
        or not name
        or len(name) > MAX_SPAN_NAME_LEN
    ):
        raise ValueError("wire span 'name' must be a short non-empty string")
    status = obj.get("st", "ok")
    if (
        not isinstance(status, str)
        or not status
        or len(status) > MAX_SPAN_STATUS_LEN
    ):
        raise ValueError("wire span 'st' must be a short non-empty string")
    for key in ("ts", "dur"):
        value = obj.get(key)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"wire span {key!r} must be a number")
        if not math.isfinite(value):
            raise ValueError(f"wire span {key!r} must be finite")
    if float(obj["dur"]) < 0:
        raise ValueError("wire span 'dur' must be >= 0")
    attrs = obj.get("attrs", {})
    if not isinstance(attrs, dict):
        raise ValueError("wire span 'attrs' must be an object")
    if len(attrs) > MAX_SPAN_ATTRS:
        raise ValueError(f"wire span has more than {MAX_SPAN_ATTRS} attrs")
    for key, value in attrs.items():
        if not isinstance(key, str) or len(key) > MAX_SPAN_ATTR_KEY_LEN:
            raise ValueError("wire span attr keys must be short strings")
        if isinstance(value, str):
            if len(value) > MAX_SPAN_ATTR_STR_LEN:
                raise ValueError("wire span attr string value too long")
        elif isinstance(value, (int, float)):
            if not isinstance(value, bool) and not math.isfinite(value):
                raise ValueError("wire span attr numbers must be finite")
        elif value is not None and not isinstance(value, bool):
            raise ValueError("wire span attr values must be scalars")
    return obj


def validate_wire_spans(value: Any) -> tuple[dict, ...]:
    """Validate a whole ``sp`` wire field (a list of span dicts)."""
    if not isinstance(value, list):
        raise ValueError("wire spans must be a list")
    if len(value) > MAX_WIRE_SPANS:
        raise ValueError(
            f"wire spans exceed the per-envelope cap of {MAX_WIRE_SPANS}"
        )
    return tuple(validate_wire_span(item) for item in value)


class SpanBuffer:
    """Bounded thread-safe ring of completed spans.

    Overflow drops the *oldest* span and increments
    ``repro_spans_dropped_total`` on the owning registry — recent
    history is what post-mortems and ``trace view`` ask for.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_SPAN_BUFFER_CAPACITY,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: collections.deque[Span] = collections.deque()
        self._registry = registry
        self._dropped = None  # lazy counter; registry may not exist yet

    def _dropped_counter(self):
        counter = self._dropped
        if counter is None:
            registry = self._registry or default_registry()
            counter = registry.counter(
                "repro_spans_dropped_total",
                "Completed spans evicted from a full SpanBuffer "
                "(oldest-first)",
            )
            # Publish under the lock: two racing callers both resolve
            # the same registry counter (get-or-create), but the cached
            # attribute must be written exactly once.
            with self._lock:
                if self._dropped is None:
                    self._dropped = counter
                counter = self._dropped
        return counter

    def add(self, span: Span) -> None:
        dropped = 0
        with self._lock:
            self._spans.append(span)
            while len(self._spans) > self.capacity:
                self._spans.popleft()
                dropped += 1
        if dropped:
            self._dropped_counter().inc(dropped)

    def extend(self, spans: Sequence[Span]) -> None:
        for item in spans:
            self.add(item)

    def snapshot(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def trace(self, trace_id: str) -> list[Span]:
        """All buffered spans of one trace, timeline-ordered."""
        with self._lock:
            matched = [s for s in self._spans if s.trace_id == trace_id]
        matched.sort(key=lambda s: (s.start_wall, s.name))
        return matched

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in the buffer, most recent last."""
        seen: dict[str, None] = {}
        with self._lock:
            for item in self._spans:
                seen[item.trace_id] = None
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_default_buffer: SpanBuffer | None = None
_default_buffer_lock = threading.Lock()


def default_span_buffer() -> SpanBuffer:
    """The process-global span ring (mirrors ``default_registry``)."""
    global _default_buffer
    if _default_buffer is None:
        with _default_buffer_lock:
            if _default_buffer is None:
                _default_buffer = SpanBuffer()
    return _default_buffer


@contextlib.contextmanager
def span(
    name: str,
    *,
    buffer: SpanBuffer | None = None,
    attributes: Mapping[str, Any] | None = None,
) -> Iterator[Span]:
    """Record one timed span around a block.

    Inherits the bound trace (or mints a root trace id), parents under
    the currently bound span, and binds its own span id for the block
    so nested spans and log records chain.  The completed span lands
    in ``buffer`` (default: the process-global one); an exception
    marks ``status="error:<Type>"`` and re-raises.
    """
    target = buffer if buffer is not None else default_span_buffer()
    current = Span.begin(name)
    if attributes:
        current.attributes.update(attributes)
    try:
        with bind_trace(current.trace_id, current.span_id):
            yield current
    except BaseException as exc:
        target.add(current.finish(status=f"error:{type(exc).__name__}"))
        raise
    else:
        target.add(current.finish(current.status))


# ----------------------------------------------------------------------
# ASCII waterfall
# ----------------------------------------------------------------------


def _span_depth(item: Span, by_id: Mapping[str, Span]) -> int:
    depth, parent, hops = 0, item.parent_id, 0
    while parent is not None and hops < 16:  # hop cap guards id cycles
        parent_span = by_id.get(parent)
        depth += 1
        parent = parent_span.parent_id if parent_span is not None else None
        hops += 1
    return depth


def _attr_text(item: Span, limit: int = 48) -> str:
    parts = [f"{k}={v}" for k, v in sorted(item.attributes.items())]
    text = " ".join(parts)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


def render_waterfall(spans: Sequence[Span], width: int = 100) -> str:
    """Render one trace's spans as an ASCII waterfall.

    One row per span, indented by parent depth, with a proportional
    bar on a shared wall-clock axis — the dispatch → execute → stream
    → accept shape is visible at a glance, no log grepping.
    """
    if not spans:
        return "(no spans)"
    ordered = sorted(spans, key=lambda s: (s.start_wall, s.name))
    by_id = {s.span_id: s for s in ordered}
    t0 = min(s.start_wall for s in ordered)
    t1 = max(
        (s.end_wall if s.end_wall is not None else s.start_wall)
        for s in ordered
    )
    total = max(t1 - t0, 1e-9)
    labels = [
        "  " * _span_depth(s, by_id) + s.name for s in ordered
    ]
    label_w = min(max(len(lb) for lb in labels), 40)
    bar_w = max(20, width - label_w - 24)
    trace_ids = {s.trace_id for s in ordered}
    header = (
        f"trace {', '.join(sorted(trace_ids))} — {len(ordered)} spans, "
        f"{total * 1e3:.2f} ms"
    )
    lines = [header]
    for item, label in zip(ordered, labels):
        offset = int((item.start_wall - t0) / total * (bar_w - 1))
        length = max(1, round(item.duration_s / total * bar_w))
        length = min(length, bar_w - offset)
        bar = " " * offset + "#" * length
        row = (
            f"{label[:label_w]:<{label_w}} "
            f"|{bar:<{bar_w}}| "
            f"{item.duration_s * 1e3:>9.2f}ms"
        )
        if item.status != "ok":
            row += f" !{item.status}"
        attrs = _attr_text(item)
        if attrs:
            row += f"  {attrs}"
        lines.append(row)
    return "\n".join(lines)
