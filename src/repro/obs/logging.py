"""Structured logging with trace ids, silent by default.

Everything under the ``repro`` logger hierarchy follows the
library-friendly contract: a :class:`logging.NullHandler` is installed
at import so embedding applications hear nothing unless they opt in,
and :func:`configure_logging` is the one opt-in switch the CLI flips —
plain one-line text for humans, or one JSON object per line
(``json=True``) for machines.

Every record is stamped with the trace/span ids bound in the current
context (see :mod:`repro.obs.trace`) by a logging filter, so the
coordinator's dispatch record, the worker's execution record, and the
coordinator's acceptance record for one chunk all carry the same
``trace_id`` with zero plumbing at the call sites.

Call sites use :func:`log_event`: an ``event`` name plus flat
key=value fields, which lands as ``extra`` structured fields in JSON
mode and as a readable suffix in text mode.
"""

from __future__ import annotations

import json
import logging
from typing import Any

from repro.obs.trace import current_span, current_trace

__all__ = [
    "ROOT_LOGGER_NAME",
    "TraceContextFilter",
    "JsonFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
]

ROOT_LOGGER_NAME = "repro"

# Attributes a vanilla LogRecord carries; anything beyond these came in
# via ``extra`` and belongs in the structured payload.
_STANDARD_RECORD_ATTRS = frozenset(
    vars(
        logging.LogRecord("", 0, "", 0, "", (), None)
    )
) | {"message", "asctime", "taskName"}


class TraceContextFilter(logging.Filter):
    """Stamp the context-bound trace/span ids onto every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "trace_id"):
            trace_id = current_trace()
            if trace_id is not None:
                record.trace_id = trace_id
        if not hasattr(record, "span_id"):
            span_id = current_span()
            if span_id is not None:
                record.span_id = span_id
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, event fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in vars(record).items():
            if key in _STANDARD_RECORD_ATTRS or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


class TextFormatter(logging.Formatter):
    """Human-readable line with the structured fields as k=v suffix."""

    def format(self, record: logging.LogRecord) -> str:
        base = (
            f"{self.formatTime(record, '%H:%M:%S')} "
            f"{record.levelname:<7} {record.name}: {record.getMessage()}"
        )
        fields = [
            f"{key}={value}"
            for key, value in vars(record).items()
            if key not in _STANDARD_RECORD_ATTRS and not key.startswith("_")
        ]
        if fields:
            base += "  [" + " ".join(fields) + "]"
        if record.exc_info and record.exc_info[0] is not None:
            base += "\n" + self.formatException(record.exc_info)
        return base


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``repro.<name>``)."""
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    *,
    json: bool = False,
    level: int | str = logging.INFO,
    stream: Any = None,
) -> logging.Handler:
    """Attach one real handler to the ``repro`` hierarchy.

    Idempotent in effect: previously configured handlers (from an
    earlier call) are removed first, so reconfiguring never
    double-emits.  Returns the installed handler so tests and the CLI
    can detach or flush it.
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler._repro_obs_handler = True  # type: ignore[attr-defined]
    handler.addFilter(TraceContextFilter())
    handler.setFormatter(JsonFormatter() if json else TextFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.INFO,
    **fields: Any,
) -> None:
    """Emit one structured record: ``event`` name + flat fields."""
    if not logger.isEnabledFor(level):
        return
    extra: dict[str, Any] = {"event": event}
    # Stamp trace ids at the call site too (not only in the handler
    # filter) so records keep their ids through any foreign handler a
    # test or embedding application attaches.
    trace_id = current_trace()
    if trace_id is not None:
        extra["trace_id"] = trace_id
    span_id = current_span()
    if span_id is not None:
        extra["span_id"] = span_id
    extra.update(fields)
    logger.log(level, event, extra=extra)


# Library contract: silent unless the application opts in.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())
