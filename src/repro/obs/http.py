"""Plaintext HTTP scrape endpoint for a metrics registry.

``--metrics-port`` on ``serve`` and ``worker`` starts one of these: a
stdlib :class:`ThreadingHTTPServer` on a daemon thread serving

* ``GET /metrics`` — Prometheus text exposition
  (:meth:`MetricsRegistry.render_prometheus`), and
* ``GET /stats`` — the JSON snapshot (:meth:`MetricsRegistry.snapshot`).

This endpoint is deliberately *read-only and unauthenticated* —
standard Prometheus practice — so it must be bound to a trusted
interface (default loopback).  Metrics expose operational counts, not
task payloads or secrets.  The authenticated path to the same data is
the service-protocol ``stats`` frame.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer"]


class MetricsServer:
    """A daemon-thread HTTP server exposing one registry."""

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.registry = registry

        server_ref = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = server_ref.registry.render_prometheus().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/stats":
                    body = json.dumps(server_ref.registry.snapshot()).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                # Scrapes are periodic; stderr chatter helps nobody.
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
