"""Plaintext HTTP scrape + probe endpoint for one process.

``--metrics-port`` on ``serve`` and ``worker`` starts one of these: a
stdlib :class:`ThreadingHTTPServer` on a daemon thread serving

* ``GET /metrics`` — Prometheus text exposition
  (:meth:`MetricsRegistry.render_prometheus`),
* ``GET /stats`` — the JSON snapshot (:meth:`MetricsRegistry.snapshot`),
* ``GET /healthz`` — liveness (200 while the process can answer), and
* ``GET /readyz`` — readiness (200, or 503 with a JSON body naming
  the failing probe / the drain reason — see
  :class:`repro.obs.health.HealthState`).

This endpoint is deliberately *read-only and unauthenticated* —
standard Prometheus/k8s-probe practice — so it must be bound to a
trusted interface (default loopback).  Metrics expose operational
counts, not task payloads or secrets.  The authenticated path to the
same data is the service-protocol ``stats`` frame.

Concurrency: ``ThreadingHTTPServer`` answers each scrape on its own
thread, and both renderers snapshot under the registry lock, so
parallel ``/metrics`` + ``/stats`` + probe requests never interleave
into corrupt output (pinned by tests).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.health import HealthState
from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer"]


class MetricsServer:
    """A daemon-thread HTTP server exposing one registry + health."""

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        health: HealthState | None = None,
    ) -> None:
        self.registry = registry
        self.health = health if health is not None else HealthState()

        server_ref = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API name)
                path = self.path.split("?", 1)[0]
                status = 200
                if path in ("/metrics", "/"):
                    body = server_ref.registry.render_prometheus().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/stats":
                    body = json.dumps(server_ref.registry.snapshot()).encode()
                    ctype = "application/json"
                elif path == "/healthz":
                    body = json.dumps(server_ref.health.liveness()).encode()
                    ctype = "application/json"
                elif path == "/readyz":
                    ready, detail = server_ref.health.readiness()
                    status = 200 if ready else 503
                    body = json.dumps(detail).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(status)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format: str, *args: object) -> None:
                # Scrapes are periodic; stderr chatter helps nobody.
                pass

        try:
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            # A raw EADDRINUSE traceback tells an operator nothing
            # about *which* flag to change; name it.
            raise OSError(
                f"metrics endpoint cannot bind {host}:{port} "
                f"({exc.strerror or exc}) — is another process already "
                f"listening there?  Pass a different --metrics-port "
                f"(0 picks a free port)"
            ) from exc
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
