#!/usr/bin/env python3
"""Distributed password cracking with verifiable participants.

The paper's §3 motivating example: breaking a password by brute force,
with the key space partitioned across participants.  The supervisor
publishes the target digest; each participant sweeps its share of the
key space, reports any hit through a match screener, and proves via CBS
that it really swept everything — a participant that skipped the region
containing the key would otherwise silently lose it.

Run:  python examples/password_crack.py
"""

from repro import (
    CBSScheme,
    GridSimulation,
    HonestBehavior,
    MatchScreener,
    PasswordSearch,
    RangeDomain,
    SemiHonestCheater,
    SimulationConfig,
    TaskAssignment,
)
from repro.analysis import format_table


def main() -> None:
    # 2^16 keys split over 8 participants; the secret key is hidden
    # somewhere in the space.
    key_space = RangeDomain(0, 1 << 16)
    secret_key = 48_611
    fn = PasswordSearch(salt=b"examples/password")
    target = fn.target_for(secret_key)
    print(f"hunting digest {target.hex()} over {len(key_space):,} keys\n")

    # Population: participants 1 and 5 are lazy (compute 60%).
    behaviors = [
        HonestBehavior(),
        SemiHonestCheater(0.6),
        HonestBehavior(),
        HonestBehavior(),
        HonestBehavior(),
        SemiHonestCheater(0.6),
        HonestBehavior(),
        HonestBehavior(),
    ]
    report = GridSimulation(
        SimulationConfig(
            domain=key_space,
            function=fn,
            scheme=CBSScheme(n_samples=25),
            n_participants=8,
            behaviors=behaviors,
            screener=MatchScreener(target),
            seed=11,
        )
    ).run()

    rows = [
        {
            "participant": p.participant,
            "behavior": p.behavior,
            "accepted": p.accepted,
            "evaluations": p.participant_ledger.evaluations,
            "bytes_sent": p.participant_ledger.bytes_sent,
        }
        for p in report.participants
    ]
    print(format_table(rows, title="CBS verification per participant"))
    print()
    print(f"cheaters caught: {report.cheaters_caught}/{report.n_cheaters}")
    print(f"false alarms:    {report.honest_rejected}")
    print(f"supervisor ingress: {report.supervisor_bytes_received:,} bytes")

    # Which participant held the key?  Re-run its screener honestly to
    # show the hit lands with the honest worker that owns the range.
    parts = key_space.partition(8)
    owner = next(
        i for i, part in enumerate(parts) if part[0] <= secret_key < part[0] + len(part)
    )
    print(f"\nsecret key {secret_key} lives in participant-{owner}'s range")

    from repro.core import CBSParticipant

    assignment = TaskAssignment(
        "owner-task", parts[owner], fn, screener=MatchScreener(target)
    )
    worker = CBSParticipant(assignment, behaviors[owner])
    worker.compute_and_commit()
    hits = worker.reports().reports
    print(f"participant-{owner} ({behaviors[owner].name}) reported: {hits}")


if __name__ == "__main__":
    main()
