#!/usr/bin/env python3
"""NI-CBS through a Grid Resource Broker (the paper's §4 GRACE setting).

In the GRACE architecture the supervisor hands a bulk of tasks to a
broker and never addresses participants directly — so the interactive
commit-then-challenge round of CBS is impossible.  NI-CBS derives the
samples from the commitment itself (Eq. 4) and the whole proof travels
supervisor-ward in a single message via the broker.

Also demonstrates §4.2's regrinding attack and the Eq. 5 economics:
with a cheap sample hash ``g`` the attack is profitable; iterating
``g`` per Eq. 5 destroys the profit.

Run:  python examples/grace_broker.py
"""

from repro import (
    GridResourceBroker,
    HonestBehavior,
    Network,
    ParticipantNode,
    SemiHonestCheater,
    SignalSearch,
    SupervisorNode,
    RangeDomain,
    TaskAssignment,
)
from repro.analysis import format_table
from repro.analysis.costs import min_sample_hash_cost, uncheatable_g_rounds
from repro.cheating.regrind import expected_regrind_attempts, run_regrind_attack
from repro.merkle import get_hash


def run_brokered_grid() -> None:
    print("== NI-CBS over the GRACE broker topology ==")
    sky = RangeDomain(0, 4_096)
    fn = SignalSearch(sky_seed=b"examples/grace")
    chunks = sky.partition(4)
    catalogue = {
        f"wu-{i}": TaskAssignment(f"wu-{i}", chunks[i], fn) for i in range(4)
    }

    net = Network()
    supervisor = SupervisorNode("sup", net, protocol="ni-cbs", n_samples=24)
    broker = GridResourceBroker("grb", net, supervisor_name="sup")
    behaviors = [
        HonestBehavior(),
        HonestBehavior(),
        SemiHonestCheater(0.5),
        HonestBehavior(),
    ]
    for i in range(4):
        ParticipantNode(
            f"worker-{i}",
            net,
            behaviors[i],
            catalogue.__getitem__,
            protocol="ni-cbs",
            n_samples=24,
        )
        broker.register_worker(f"worker-{i}")

    for task_id in catalogue:
        supervisor.assign(catalogue[task_id], "grb")
    net.deliver_all()

    rows = [
        {
            "task": task_id,
            "placed_on": broker.placements[task_id],
            "behavior": behaviors[i].name,
            "accepted": supervisor.outcomes[task_id].accepted,
        }
        for i, task_id in enumerate(catalogue)
    ]
    print(format_table(rows))
    direct = [link for link in net.links if set(link) == {"sup", "worker-2"}]
    print(f"supervisor↔worker direct links: {len(direct)} (all via broker)\n")


def run_regrind_economics() -> None:
    print("== §4.2 regrinding attack and the Eq. 5 defence ==")
    n, m, r = 256, 6, 0.8
    fn_cost = 50.0
    task = TaskAssignment(
        "grind-target",
        RangeDomain(0, n),
        SignalSearch(cost=fn_cost),
    )
    print(
        f"n={n}, m={m}, r={r}: expected attempts 1/r^m = "
        f"{expected_regrind_attempts(r, m):.1f}"
    )

    rows = []
    rounds_needed = uncheatable_g_rounds(n, fn_cost, r, m)
    for label, g in (
        ("cheap g (1 hash)", get_hash("sha256")),
        (f"Eq.5 g (sha256^{rounds_needed})", get_hash(f"sha256^{rounds_needed}")),
    ):
        result = run_regrind_attack(
            task,
            honesty_ratio=r,
            n_samples=m,
            sample_hash=g,
            seed=4,
            max_attempts=50_000,
        )
        rows.append(
            {
                "g": label,
                "attempts": result.attempts,
                "succeeded": result.succeeded,
                "attack_cost": round(result.attack_cost),
                "honest_cost": round(result.honest_task_cost),
                "profitable": result.profitable,
            }
        )
    print(format_table(rows))
    print(
        "minimum C_g per Eq. 5: "
        f"{min_sample_hash_cost(n, fn_cost, r, m):.1f} cost units"
    )


if __name__ == "__main__":
    run_brokered_grid()
    run_regrind_economics()
