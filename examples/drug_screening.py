#!/usr/bin/env python3
"""Virtual drug screening with a threshold screener (smallpox grid).

Models the paper's §1 IBM smallpox example: a library of molecules is
scored against a target; low docking scores are candidate drugs.  A
lazy participant endangers the science silently — skipped molecules
can hide the best binders — so the supervisor runs CBS *and* we show
what the cheater's laziness would have cost: candidate molecules that
were never reported.

Also demonstrates the storage-optimized participant (§3.3): the same
protocol with a partial Merkle tree and its measured recompute
overhead.

Run:  python examples/drug_screening.py
"""

from repro import (
    CBSScheme,
    HonestBehavior,
    MoleculeScreening,
    RangeDomain,
    SemiHonestCheater,
    TaskAssignment,
    ThresholdScreener,
)
from repro.analysis import format_table
from repro.core import CBSParticipant
from repro.core.storage_opt import predicted_rco


def candidate_set(reports: tuple[str, ...]) -> set[str]:
    return {r.split(":")[1] for r in reports}


def main() -> None:
    library = RangeDomain(0, 20_000)
    fn = MoleculeScreening(library_seed=b"examples/smallpox", resolution=4096)
    cut = 40  # levels 0..40 of 4096 ≈ top 1% binders
    task = TaskAssignment(
        "screening-batch-0",
        library,
        fn,
        screener=ThresholdScreener(threshold=cut, direction="below"),
    )

    # What an honest sweep finds.
    honest_worker = CBSParticipant(task, HonestBehavior())
    honest_worker.compute_and_commit()
    honest_hits = candidate_set(honest_worker.reports().reports)
    print(f"honest sweep finds {len(honest_hits)} candidate molecules")

    # What a 70%-honest cheater reports — and what it silently drops.
    cheat_worker = CBSParticipant(task, SemiHonestCheater(0.7))
    cheat_worker.compute_and_commit()
    cheat_hits = candidate_set(cheat_worker.reports().reports)
    lost = honest_hits - cheat_hits
    print(
        f"70%-honest cheater reports {len(cheat_hits)}; "
        f"{len(lost)} real candidates silently lost"
    )

    # CBS catches the cheater before the loss matters.
    scheme = CBSScheme(n_samples=30)
    outcome = scheme.run(task, SemiHonestCheater(0.7), seed=3).outcome
    print(f"CBS verdict on the cheater: accepted={outcome.accepted}\n")

    # Storage-optimized participant: sweep ℓ and compare measured
    # recompute overhead with the paper's rco = m·2^ℓ/|D| (§3.3).
    m = 16
    rows = []
    for ell in (0, 4, 6, 8):
        result = CBSScheme(
            n_samples=m,
            subtree_height=ell or None,
            with_replacement=False,
            include_reports=False,
        ).run(task, HonestBehavior(), seed=1)
        extra = result.participant_ledger.evaluations - len(library)
        rows.append(
            {
                "ell": ell,
                "stored_digests": result.participant_ledger.storage_digests,
                "extra_evals": extra,
                "measured_rco": extra / len(library),
                "paper_rco": predicted_rco(m, len(library), ell),
                "accepted": result.outcome.accepted,
            }
        )
    print(
        format_table(
            rows, title=f"§3.3 storage/compute trade-off (m={m}, |D|=20,000)"
        )
    )


if __name__ == "__main__":
    main()
