#!/usr/bin/env python3
"""Designing a paid volunteer grid end to end.

Plays the grid operator: given a payment schedule and a workload with
guessable outputs, (1) size the sample count three ways — the paper's
ε-guarantee (Eq. 3), the incentive-level deterrent, and the operator's
verification budget — then (2) stress the design with churn, collusion
and an actual cheater population.

Run:  python examples/volunteer_economics.py
"""

from repro import (
    CBSScheme,
    ColludingCheater,
    DoubleCheckScheme,
    HonestBehavior,
    SemiHonestCheater,
    SignalSearch,
    RangeDomain,
    TaskAssignment,
    required_sample_size,
)
from repro.analysis import format_table
from repro.analysis.incentives import IncentiveModel, deterrent_sample_size
from repro.cheating.guessing import UniformValueGuess
from repro.grid.faults import FlakyParticipant, RetryingScheme
from repro.grid.simulation import run_population


def size_the_samples() -> int:
    print("== Step 1: how many samples? ==")
    q = 0.5  # boolean signal verdicts: the worst case of Fig. 2
    eps_m = required_sample_size(1e-4, r=0.5, q=q)
    model = IncentiveModel(payment=120.0, task_cost=100.0, q=q)
    econ_m = deterrent_sample_size(model)
    rows = [
        {"criterion": "Eq. 3 guarantee (eps=1e-4, r=0.5)", "m": eps_m},
        {"criterion": "incentive deterrence (20% margin)", "m": econ_m},
    ]
    print(format_table(rows))
    m = max(eps_m, econ_m)
    print(f"chosen m = {m}\n")
    return m


def stress_test(m: int) -> None:
    print("== Step 2: stress the design ==")
    fn = SignalSearch(sky_seed=b"examples/econ", cost=100.0 / 512)
    domain = RangeDomain(0, 8 * 512)
    guesser = UniformValueGuess([b"\x00", b"\x01"])

    # A population with honest workers, independent cheaters, a
    # two-member cartel and churn on everyone.
    cartel = b"cartel-42"
    behaviors = [
        FlakyParticipant(HonestBehavior(), 0.2),
        FlakyParticipant(SemiHonestCheater(0.5, guesser), 0.2),
        FlakyParticipant(ColludingCheater(0.5, cartel, guesser), 0.2),
        FlakyParticipant(HonestBehavior(), 0.2),
        FlakyParticipant(ColludingCheater(0.5, cartel, guesser), 0.2),
        FlakyParticipant(HonestBehavior(), 0.2),
        FlakyParticipant(SemiHonestCheater(0.9, guesser), 0.2),
        FlakyParticipant(HonestBehavior(), 0.2),
    ]
    scheme = RetryingScheme(CBSScheme(n_samples=m), max_retries=15)
    report = run_population(
        domain, fn, scheme, behaviors=behaviors, n_participants=8, seed=9
    )
    rows = [
        {
            "participant": p.participant,
            "behavior": p.behavior,
            "honesty_ratio": round(p.honesty_ratio, 2),
            "accepted": p.accepted,
        }
        for p in report.participants
    ]
    print(format_table(rows, title=f"CBS(m={m}) under churn + collusion"))
    print(
        f"\ncheaters caught: {report.cheaters_caught}/{report.n_cheaters}; "
        f"false alarms: {report.honest_rejected}"
    )

    # Contrast: the same cartel against plain double-checking.
    task = TaskAssignment("cartel-task", RangeDomain(0, 512), fn)
    dc = DoubleCheckScheme(
        2, replica_behaviors=[ColludingCheater(0.5, cartel, guesser)]
    )
    result = dc.run(task, ColludingCheater(0.5, cartel, guesser), seed=1)
    print(
        "\ndouble-check(k=2) vs the same cartel: "
        f"accepted={result.outcome.accepted}  "
        "(redundancy assumes independent replicas; CBS does not)"
    )


def main() -> None:
    m = size_the_samples()
    stress_test(m)


if __name__ == "__main__":
    main()
