#!/usr/bin/env python3
"""Scheme shoot-out: CBS vs every baseline on two workload classes.

Reproduces the paper's positioning (§1/§1.1) as a live comparison:

* **One-way workload** (password search): all schemes apply; compare
  detection, supervisor bytes, and wasted cycles.
* **Guessable workload** (SETI-style boolean verdicts, q = 0.5): the
  ringer scheme refuses outright — "it cannot be applied to generic
  computations" — while CBS handles it with a larger m per Eq. (3).

Run:  python examples/scheme_shootout.py
"""

from repro import (
    CBSScheme,
    DoubleCheckScheme,
    HardenedProbeScheme,
    HonestBehavior,
    NaiveSamplingScheme,
    NICBSScheme,
    PasswordSearch,
    RangeDomain,
    RingerScheme,
    SemiHonestCheater,
    SignalSearch,
    TaskAssignment,
    UniformValueGuess,
)
from repro.analysis import estimate_escape_rate, format_table
from repro.exceptions import SchemeConfigurationError


def shootout(task, cheater_factory, n_trials=60) -> list[dict]:
    schemes = [
        DoubleCheckScheme(2),
        NaiveSamplingScheme(20),
        RingerScheme(20),
        HardenedProbeScheme(20),
        CBSScheme(20, include_reports=False),
        NICBSScheme(20),
    ]
    rows = []
    for scheme in schemes:
        try:
            honest = scheme.run(task, HonestBehavior(), seed=0)
        except SchemeConfigurationError as exc:
            rows.append({"scheme": scheme.name, "status": f"refused: {exc}"})
            continue
        escape = estimate_escape_rate(
            scheme, task, cheater_factory, n_trials=n_trials, seed0=100
        )
        rows.append(
            {
                "scheme": scheme.name,
                "status": "ok",
                "escape_rate": escape.rate,
                "supervisor_bytes_in": honest.supervisor_ledger.bytes_received,
                "supervisor_evals": honest.supervisor_ledger.evaluations
                + honest.supervisor_ledger.verifications,
                "wasted_evals": honest.other_ledger.evaluations,
            }
        )
    return rows


def main() -> None:
    n = 2_048

    print("== One-way workload: password search (q ≈ 0, r = 0.5) ==")
    pw_task = TaskAssignment("shoot-pw", RangeDomain(0, n), PasswordSearch())
    rows = shootout(pw_task, lambda trial: SemiHonestCheater(0.5))
    print(format_table(rows))
    print()

    print("== Guessable workload: signal search (q = 0.5, r = 0.5) ==")
    sig_task = TaskAssignment("shoot-sig", RangeDomain(0, n), SignalSearch())
    guesser = UniformValueGuess([b"\x00", b"\x01"])
    rows = shootout(sig_task, lambda trial: SemiHonestCheater(0.5, guesser))
    print(format_table(rows))
    print()
    print(
        "Note the ringer row: Golle–Mironov requires one-way f (§1.1),\n"
        "so the guessable workload is refused — CBS is the generic scheme."
    )


if __name__ == "__main__":
    main()
