#!/usr/bin/env python3
"""Quickstart: catch a lazy grid participant with CBS.

The paper's Problem 1 in fifty lines: a supervisor hands a participant
a domain of inputs, the participant commits to its results with a
Merkle root, the supervisor samples, the participant proves — and a
cheater who computed only half the domain is caught with probability
``1 − (1/2)^m``.

Run:  python examples/quickstart.py
"""

from repro import (
    CBSScheme,
    HonestBehavior,
    PasswordSearch,
    RangeDomain,
    SemiHonestCheater,
    TaskAssignment,
    cheat_success_probability,
)


def main() -> None:
    # A brute-force key-search task over 2^14 keys (scaled-down §3
    # password example) with 20 verification samples.
    task = TaskAssignment(
        task_id="quickstart",
        domain=RangeDomain(0, 1 << 14),
        function=PasswordSearch(),
    )
    scheme = CBSScheme(n_samples=20)

    print("== Honest participant ==")
    honest = scheme.run(task, HonestBehavior(), seed=7)
    print(f"accepted:            {honest.outcome.accepted}")
    print(f"f evaluations:       {honest.participant_ledger.evaluations}")
    print(f"bytes sent (proofs): {honest.participant_ledger.bytes_sent}")
    print(f"supervisor checks:   {honest.supervisor_ledger.verifications}")

    print("\n== Semi-honest cheater (computed half the domain) ==")
    lazy = scheme.run(task, SemiHonestCheater(honesty_ratio=0.5), seed=7)
    print(f"accepted:            {lazy.outcome.accepted}")
    print(f"f evaluations:       {lazy.participant_ledger.evaluations}")
    failure = lazy.outcome.first_failure
    if failure is not None:
        print(f"caught at sample:    index {failure.index} ({failure.reason.value})")
    print(
        "analytic escape prob:"
        f" {cheat_success_probability(r=0.5, q=0.0, m=20):.2e}"
    )

    print("\n== Communication: CBS vs returning everything ==")
    n = task.n_inputs
    naive_bytes = n * 16  # every 16-byte digest on the wire
    cbs_bytes = honest.participant_ledger.bytes_sent
    print(f"naive return-all:    ~{naive_bytes:,} bytes")
    print(f"CBS commitment+proofs: {cbs_bytes:,} bytes")
    print(f"reduction:           {naive_bytes / cbs_bytes:.1f}x")


if __name__ == "__main__":
    main()
